"""CLI: open-loop load test against a live LIRA service.

Against an already-running service::

    python -m repro.loadtest --socket /tmp/lira.sock --overload 4

Or spawn the matching service subprocess first (scenario flags are
forwarded so both sides build the identical scenario)::

    python -m repro.loadtest --spawn --policy lira --overload 4 \
        --duration 10 --slo-p99-ms 150

Prints the :class:`~repro.loadtest.LoadtestReport` as JSON.  With
``--check``, exits non-zero when the declared SLO is violated.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import subprocess
import sys
import tempfile

from repro import timing
from repro.geo import Rect
from repro.loadtest.runner import run_loadtest
from repro.loadtest.schedule import PROFILES, LoadProfile, OpenLoopSchedule
from repro.metrics.slo import SLOSpec

#: How long to retry connecting to a spawned service's socket.
SPAWN_CONNECT_TIMEOUT_S = 10.0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.loadtest",
        description="Open-loop load test against a live LIRA service.",
    )
    target = parser.add_mutually_exclusive_group(required=True)
    target.add_argument("--socket", help="unix socket of a running service")
    target.add_argument("--port", type=int, help="TCP port of a running service")
    target.add_argument(
        "--spawn",
        action="store_true",
        help="spawn a matching service subprocess on a temporary unix socket",
    )
    parser.add_argument("--policy", choices=("lira", "random-drop"), default="lira")
    parser.add_argument("--overload", type=float, default=4.0)
    parser.add_argument("--duration", type=float, default=10.0)
    parser.add_argument("--warmup", type=float, default=3.0)
    parser.add_argument("--profile", choices=PROFILES, default="constant")
    parser.add_argument("--profile-factor", type=float, default=3.0)
    parser.add_argument("--seed", type=int, default=0)
    # Scenario flags (must match the service's; forwarded on --spawn).
    parser.add_argument("--side", type=float, default=10_000.0)
    parser.add_argument("--n-nodes", type=int, default=400)
    parser.add_argument("--n-queries", type=int, default=20)
    parser.add_argument("--query-side", type=float, default=1_500.0)
    parser.add_argument("--workload-seed", type=int, default=7)
    parser.add_argument("--service-rate", type=float, default=1_500.0)
    parser.add_argument("--queue-capacity", type=int, default=600)
    parser.add_argument("--adapt-period", type=float, default=0.5)
    parser.add_argument("--delta-min", type=float, default=5.0)
    parser.add_argument("--slowdown-prob", type=float, default=0.0)
    parser.add_argument("--slowdown-factor", type=float, default=0.3)
    parser.add_argument("--slowdown-duration", type=float, default=0.0)
    # SLO bounds (ms); unset percentiles are unconstrained.
    parser.add_argument("--slo-p50-ms", type=float, default=None)
    parser.add_argument("--slo-p95-ms", type=float, default=None)
    parser.add_argument("--slo-p99-ms", type=float, default=150.0)
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the declared SLO is violated",
    )
    parser.add_argument("--output", help="also write the JSON report to this path")
    return parser


def spawn_service(args: argparse.Namespace, socket_path: str) -> subprocess.Popen:
    cmd = [
        sys.executable,
        "-m",
        "repro.service",
        "--socket",
        socket_path,
        "--policy",
        args.policy,
        "--side",
        str(args.side),
        "--n-nodes",
        str(args.n_nodes),
        "--n-queries",
        str(args.n_queries),
        "--query-side",
        str(args.query_side),
        "--workload-seed",
        str(args.workload_seed),
        "--service-rate",
        str(args.service_rate),
        "--queue-capacity",
        str(args.queue_capacity),
        "--adapt-period",
        str(args.adapt_period),
        "--delta-min",
        str(args.delta_min),
        "--slowdown-prob",
        str(args.slowdown_prob),
        "--slowdown-factor",
        str(args.slowdown_factor),
        "--slowdown-duration",
        str(args.slowdown_duration),
    ]
    env = dict(os.environ)
    return subprocess.Popen(cmd, env=env, stdout=subprocess.PIPE, text=True)


async def wait_for_socket(path: str, timeout: float) -> None:
    """Retry-connect until the spawned service is accepting."""
    deadline = timing.monotonic() + timeout
    while True:
        try:
            _, writer = await asyncio.open_unix_connection(path)
            writer.close()
            return
        except (ConnectionRefusedError, FileNotFoundError):
            if timing.monotonic() >= deadline:
                raise TimeoutError(f"service at {path} never came up")
            await asyncio.sleep(0.05)


async def run(args: argparse.Namespace) -> dict:
    schedule = OpenLoopSchedule.build(
        bounds=Rect(0.0, 0.0, args.side, args.side),
        n_nodes=args.n_nodes,
        duration=args.duration,
        overload=args.overload,
        service_rate=args.service_rate,
        profile=LoadProfile(name=args.profile, factor=args.profile_factor),
        seed=args.seed,
    )
    slo = SLOSpec(
        name=f"ingest-{args.policy}",
        p50_ms=args.slo_p50_ms,
        p95_ms=args.slo_p95_ms,
        p99_ms=args.slo_p99_ms,
    )
    process: subprocess.Popen | None = None
    tmpdir: tempfile.TemporaryDirectory | None = None
    socket_path = args.socket
    try:
        if args.spawn:
            tmpdir = tempfile.TemporaryDirectory(prefix="lira-loadtest-")
            socket_path = os.path.join(tmpdir.name, "lira.sock")
            # One-shot fork/exec before the measurement window opens;
            # nothing else is scheduled on the loop yet, so briefly
            # blocking it here cannot distort measured latencies.
            process = spawn_service(args, socket_path)  # reprolint: disable=REP040
            await wait_for_socket(socket_path, SPAWN_CONNECT_TIMEOUT_S)
        report = await run_loadtest(
            schedule,
            slo=slo,
            path=socket_path,
            port=args.port,
            warmup_s=args.warmup,
            default_delta=args.delta_min,
        )
        doc = report.to_dict()
        doc["policy"] = args.policy
        return doc
    finally:
        if process is not None:
            process.terminate()
            try:
                process.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if tmpdir is not None:
            tmpdir.cleanup()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    doc = asyncio.run(run(args))
    text = json.dumps(doc, indent=2)
    print(text)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text + "\n")
    if args.check and doc.get("ingest_slo") and not doc["ingest_slo"]["ok"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
