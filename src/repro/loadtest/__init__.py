"""Open-loop load harness for the live service (:mod:`repro.service`).

``python -m repro.loadtest --spawn --overload 4`` spawns a service
subprocess and replays a precomputed schedule against it, reporting
p50/p95/p99 ingest and plan-propagation latency against declared SLOs.
"""

from repro.loadtest.runner import LoadtestReport, run_loadtest
from repro.loadtest.schedule import PROFILES, LoadProfile, OpenLoopSchedule

__all__ = [
    "LoadProfile",
    "LoadtestReport",
    "OpenLoopSchedule",
    "PROFILES",
    "run_loadtest",
]
