"""Open-loop load schedules: everything is decided before the run.

The load generator must be **open-loop**: every tick's wall-clock send
offset and every node's motion are computed up front from a seeded RNG,
and the sender never waits for the server.  A closed-loop generator (one
that sends the next request after the previous response) silently slows
down exactly when the server is overloaded, and so *measures away* the
tail latency it was supposed to observe — the coordinated-omission
failure.  Here, if the server falls behind, requests still fire on
schedule and latency is charged from the *scheduled* send time.

A schedule has two independent parts:

* **offsets** — when each tick fires, from a :class:`LoadProfile`
  (constant rate, periodic bursts, or a flash crowd that permanently
  multiplies the rate partway through);
* **motion** — a synthetic mobile trace (random-heading wanderers with
  slowly drifting headings, reflected at the bounds), generated in
  "simulation seconds" at city-scale speeds and replayed time-compressed:
  velocities are scaled by ``time_scale`` so one sim tick elapses in one
  wall tick.  Heading drift makes dead-reckoning deviation grow a few
  meters per tick, which is what puts the fleet's send rate *inside* the
  throttler's control range: Δ⊢ lets nearly every node report every
  tick, Δ⊣ once every ~10 ticks.

Given the same parameters and seed, two schedules are bit-identical —
the reproducibility tests assert exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Rect

__all__ = ["LoadProfile", "OpenLoopSchedule", "PROFILES"]

PROFILES = ("constant", "burst", "flash-crowd")


@dataclass(frozen=True)
class LoadProfile:
    """How the tick rate evolves over the run.

    ``constant`` fires ticks every ``base_gap`` seconds.  ``burst``
    alternates baseline stretches with windows (every ``burst_every``
    seconds, lasting ``burst_len`` seconds) where the gap shrinks by
    ``factor``.  ``flash-crowd`` runs at baseline until ``ramp_at``
    (a fraction of the duration), then permanently multiplies the rate
    by ``factor``.  All offsets get a small seeded jitter (±5% of the
    local gap) so ticks never phase-lock with the server's pump.
    """

    name: str = "constant"
    factor: float = 3.0
    burst_every: float = 4.0
    burst_len: float = 1.0
    ramp_at: float = 0.5

    def __post_init__(self) -> None:
        if self.name not in PROFILES:
            raise ValueError(f"profile must be one of {PROFILES}")
        if self.factor < 1.0:
            raise ValueError("factor must be >= 1")
        if self.burst_every <= 0 or self.burst_len < 0:
            raise ValueError("burst_every must be positive, burst_len >= 0")
        if not (0.0 < self.ramp_at < 1.0):
            raise ValueError("ramp_at must be in (0, 1)")

    def _gap_at(self, t: float, base_gap: float, duration: float) -> float:
        if self.name == "burst":
            if (t % self.burst_every) < self.burst_len:
                return base_gap / self.factor
            return base_gap
        if self.name == "flash-crowd":
            if t >= self.ramp_at * duration:
                return base_gap / self.factor
            return base_gap
        return base_gap

    def offsets(
        self, duration: float, base_gap: float, rng: np.random.Generator
    ) -> np.ndarray:
        """Strictly increasing wall offsets covering ``[0, duration)``."""
        if duration <= 0 or base_gap <= 0:
            raise ValueError("duration and base_gap must be positive")
        out = []
        t = 0.0
        while t < duration:
            out.append(t)
            gap = self._gap_at(t, base_gap, duration)
            t += gap * (1.0 + rng.uniform(-0.05, 0.05))
        return np.array(out, dtype=np.float64)


@dataclass(frozen=True)
class OpenLoopSchedule:
    """A fully precomputed replay: offsets + time-compressed motion.

    ``positions[r]`` / ``velocities[r]`` are the fleet state at tick
    ``r`` (velocities already wall-scaled by ``time_scale``); the tick
    fires at wall offset ``offsets[r]`` from the run's start.
    """

    offsets: np.ndarray
    positions: np.ndarray
    velocities: np.ndarray
    base_gap: float
    dt_sim: float
    time_scale: float
    overload: float
    profile: LoadProfile
    seed: int

    @property
    def n_ticks(self) -> int:
        return int(self.offsets.size)

    @property
    def n_nodes(self) -> int:
        return int(self.positions.shape[1])

    @property
    def duration(self) -> float:
        return float(self.offsets[-1]) if self.n_ticks else 0.0

    @classmethod
    def build(
        cls,
        bounds: Rect,
        n_nodes: int,
        duration: float,
        overload: float,
        service_rate: float,
        profile: LoadProfile | None = None,
        seed: int = 0,
        dt_sim: float = 10.0,
        speed_range: tuple[float, float] = (10.0, 30.0),
        heading_sigma: float = 0.05,
    ) -> "OpenLoopSchedule":
        """Precompute a schedule for an ``overload``× offered load.

        ``base_gap`` is sized so an *unthrottled* fleet (every node
        reporting every tick, the Δ⊢ regime) offers
        ``overload · service_rate`` reports per second:
        ``base_gap = n_nodes / (overload · service_rate)``.
        """
        if overload <= 0:
            raise ValueError("overload must be positive")
        if service_rate <= 0 or n_nodes <= 0:
            raise ValueError("service_rate and n_nodes must be positive")
        profile = profile or LoadProfile()
        root = np.random.SeedSequence(seed)
        offsets_seq, motion_seq = root.spawn(2)
        base_gap = n_nodes / (overload * service_rate)
        offsets = profile.offsets(
            duration, base_gap, np.random.default_rng(offsets_seq)
        )
        positions, velocities = _wander_trace(
            bounds,
            n_nodes,
            offsets.size,
            dt_sim,
            speed_range,
            heading_sigma,
            np.random.default_rng(motion_seq),
        )
        time_scale = dt_sim / base_gap
        return cls(
            offsets=offsets,
            positions=positions,
            velocities=velocities * time_scale,
            base_gap=base_gap,
            dt_sim=dt_sim,
            time_scale=time_scale,
            overload=overload,
            profile=profile,
            seed=seed,
        )

    def describe(self) -> dict:
        """JSON-friendly schedule metadata (not the arrays)."""
        return {
            "n_ticks": self.n_ticks,
            "n_nodes": self.n_nodes,
            "duration_s": round(self.duration, 3),
            "base_gap_s": round(self.base_gap, 6),
            "dt_sim_s": self.dt_sim,
            "time_scale": round(self.time_scale, 3),
            "overload": self.overload,
            "profile": self.profile.name,
            "profile_factor": self.profile.factor,
            "seed": self.seed,
        }


def _wander_trace(
    bounds: Rect,
    n_nodes: int,
    n_ticks: int,
    dt: float,
    speed_range: tuple[float, float],
    heading_sigma: float,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Random-heading wanderers with reflective bounds, in sim time.

    Speeds are fixed per node; headings random-walk with per-tick
    standard deviation ``heading_sigma`` — the knob that sets how fast
    dead-reckoning deviation accumulates (lateral drift per tick is
    roughly ``speed · dt · heading_sigma``).
    """
    lo, hi = speed_range
    if not (0 < lo <= hi):
        raise ValueError("speed_range must satisfy 0 < lo <= hi")
    pos = np.column_stack(
        (
            rng.uniform(bounds.x1, bounds.x2, n_nodes),
            rng.uniform(bounds.y1, bounds.y2, n_nodes),
        )
    )
    speed = rng.uniform(lo, hi, n_nodes)
    heading = rng.uniform(0.0, 2.0 * np.pi, n_nodes)
    positions = np.empty((n_ticks, n_nodes, 2), dtype=np.float64)
    velocities = np.empty((n_ticks, n_nodes, 2), dtype=np.float64)
    for r in range(n_ticks):
        vel = np.column_stack((np.cos(heading), np.sin(heading))) * speed[:, None]
        positions[r] = pos
        velocities[r] = vel
        pos = pos + vel * dt
        # Reflect at the bounds: mirror the overshoot, flip the heading
        # component, and keep going — nodes never leave the region.
        for axis, (low, high) in enumerate(
            ((bounds.x1, bounds.x2), (bounds.y1, bounds.y2))
        ):
            under = pos[:, axis] < low
            over = pos[:, axis] > high
            pos[under, axis] = 2 * low - pos[under, axis]
            pos[over, axis] = 2 * high - pos[over, axis]
            bounced = under | over
            if np.any(bounced):
                comp = vel[bounced].copy()
                comp[:, axis] = -comp[:, axis]
                heading[bounced] = np.arctan2(comp[:, 1], comp[:, 0])
        heading = heading + rng.normal(0.0, heading_sigma, n_nodes)
    return positions, velocities
