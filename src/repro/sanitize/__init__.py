"""Opt-in runtime sanitizers: the dynamic counterpart to ``repro.lint``.

The static rules promise the determinism and responsiveness contracts
*hold by construction*; these sanitizers check them *while code runs*.
All of them are disabled unless ``REPRO_SANITIZE=1`` is set, so
production and default test runs pay nothing:

* :class:`~repro.sanitize.slow_callback.SlowCallbackDetector` — times
  every event-loop callback and reports ones that hog the loop past a
  threshold (the dynamic face of REP040);
* :class:`~repro.sanitize.rng_guard.GlobalRngGuard` /
  :func:`~repro.sanitize.rng_guard.rng_discipline` — make any draw from
  the process-global numpy/stdlib RNGs raise (the dynamic face of
  REP001);
* :func:`~repro.sanitize.errstate.vector_errstate` — runs the vector
  kernels under ``np.errstate(invalid="raise", over="raise")`` so NaNs
  and overflows fail loudly instead of propagating into plans.

This package is an environment-variable seam (like ``repro.sim.cache``):
the ``REPRO_SANITIZE*`` reads below are the one sanctioned place the
switches are consulted — everything else calls these helpers.
"""

from __future__ import annotations

import os

from repro.sanitize.errstate import vector_errstate
from repro.sanitize.rng_guard import GlobalRngGuard, RngDisciplineError, rng_discipline
from repro.sanitize.slow_callback import SlowCallback, SlowCallbackDetector

__all__ = [
    "GlobalRngGuard",
    "RngDisciplineError",
    "SlowCallback",
    "SlowCallbackDetector",
    "enabled",
    "rng_discipline",
    "slow_callback_threshold_s",
    "vector_errstate",
]

#: Truthy spellings accepted for ``REPRO_SANITIZE``.
_TRUTHY = frozenset({"1", "true", "yes", "on"})

#: Default slow-callback threshold when ``REPRO_SANITIZE_SLOW_MS`` is unset.
DEFAULT_SLOW_CALLBACK_MS = 100.0


def enabled() -> bool:
    """True when ``REPRO_SANITIZE`` requests the runtime sanitizers."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


def slow_callback_threshold_s() -> float:
    """Slow-callback threshold in seconds (``REPRO_SANITIZE_SLOW_MS``)."""
    raw = os.environ.get("REPRO_SANITIZE_SLOW_MS", "")
    try:
        millis = float(raw)
    except ValueError:
        millis = DEFAULT_SLOW_CALLBACK_MS
    return max(0.0, millis) / 1000.0
