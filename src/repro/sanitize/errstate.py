"""Strict floating-point state for the vector kernels.

The vectorized adapt path (:mod:`repro.core.greedy_vector`) reduces
large float arrays where a NaN or silent overflow would propagate into
every downstream threshold.  Under ``REPRO_SANITIZE=1`` the kernels run
with ``np.errstate(invalid="raise", over="raise")`` so the first bad
operation raises ``FloatingPointError`` at its source; otherwise this
is a free ``nullcontext``.

Fully typed because ``repro.core.greedy_vector`` is checked with
``disallow_untyped_calls``.
"""

from __future__ import annotations

import contextlib
from typing import Any, ContextManager

import numpy as np

__all__ = ["vector_errstate"]


def vector_errstate() -> ContextManager[Any]:
    """Strict errstate when sanitizing is enabled, else a no-op."""
    from repro import sanitize

    if sanitize.enabled():
        return np.errstate(invalid="raise", over="raise")
    return contextlib.nullcontext()
