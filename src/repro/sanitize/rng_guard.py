"""Global-RNG discipline guard (the dynamic face of REP001).

Library code must draw randomness only from explicitly-seeded generator
objects — never from the process-global numpy or stdlib RNG state the
legacy module-level functions mutate.  With the guard installed, any
such draw raises :class:`RngDisciplineError` naming the offender, so a
sanitizer run catches violations the static rule cannot see (dynamic
dispatch, third-party callbacks).

The patched name sets are the same frozensets REP001 checks
(:mod:`repro.lint.knowledge`), so the static and dynamic layers enforce
one contract.
"""

from __future__ import annotations

import contextlib
import random as _random_module
from typing import Any, Callable, ContextManager, Iterator

import numpy as np

from repro.lint.knowledge import NP_LEGACY_GLOBAL_FNS, STDLIB_RANDOM_FNS

__all__ = ["GlobalRngGuard", "RngDisciplineError", "rng_discipline"]


class RngDisciplineError(RuntimeError):
    """A process-global RNG was used while the guard was installed."""


def _raiser(qualname: str) -> Callable[..., Any]:
    def _blocked(*_args: Any, **_kwargs: Any) -> Any:
        raise RngDisciplineError(
            f"{qualname} draws from process-global RNG state; construct a "
            "seeded generator (np.random.default_rng(seed) / "
            "random.Random(seed)) and thread it through instead"
        )

    return _blocked


class GlobalRngGuard:
    """Context manager making global-RNG draws raise.

    Patches the legacy ``numpy.random.*`` module functions and the
    stdlib ``random.*`` module-level functions (which share one hidden
    ``Random`` instance).  Explicit generator objects —
    ``np.random.default_rng(seed)``, ``random.Random(seed)`` — are
    untouched; that is the point.
    """

    def __init__(self) -> None:
        self._saved_np: dict[str, Any] = {}
        self._saved_random: dict[str, Any] = {}

    @property
    def installed(self) -> bool:
        return bool(self._saved_np or self._saved_random)

    def install(self) -> None:
        if self.installed:
            return
        for name in sorted(NP_LEGACY_GLOBAL_FNS):
            if hasattr(np.random, name):
                self._saved_np[name] = getattr(np.random, name)
                setattr(np.random, name, _raiser(f"numpy.random.{name}"))
        for name in sorted(STDLIB_RANDOM_FNS):
            if hasattr(_random_module, name):
                self._saved_random[name] = getattr(_random_module, name)
                setattr(_random_module, name, _raiser(f"random.{name}"))

    def uninstall(self) -> None:
        for name, fn in self._saved_np.items():
            setattr(np.random, name, fn)
        for name, fn in self._saved_random.items():
            setattr(_random_module, name, fn)
        self._saved_np.clear()
        self._saved_random.clear()

    def __enter__(self) -> "GlobalRngGuard":
        self.install()
        return self

    def __exit__(self, *exc: object) -> None:
        self.uninstall()


@contextlib.contextmanager
def _null_guard() -> Iterator[None]:
    yield


def rng_discipline() -> ContextManager[Any]:
    """The guard when sanitizing is enabled, else a no-op context.

    Wrapped around the library's deterministic hot paths (system tick,
    adaptation) so a ``REPRO_SANITIZE=1`` run proves no global RNG draw
    hides inside them.
    """
    from repro import sanitize

    if sanitize.enabled():
        return GlobalRngGuard()
    return _null_guard()
