"""Event-loop slow-callback detector (the dynamic face of REP040).

asyncio's own ``loop.slow_callback_duration`` only reports in debug
mode, with a fixed wall-clock source.  This detector instruments
``asyncio.events.Handle._run`` — the single choke point every scheduled
callback and task step passes through — with an *injectable clock*, so
tests can drive it deterministically with
:class:`repro.timing.ManualClock` while production uses the monotonic
clock.  Callbacks that run longer than the threshold are recorded and
logged; nothing about callback semantics changes.
"""

from __future__ import annotations

import asyncio.events
import logging
from dataclasses import dataclass
from typing import Any, Callable

from repro import timing

logger = logging.getLogger(__name__)

__all__ = ["SlowCallback", "SlowCallbackDetector"]


@dataclass(frozen=True)
class SlowCallback:
    """One callback that held the event loop past the threshold."""

    callback: str
    duration_s: float


class SlowCallbackDetector:
    """Context manager instrumenting every event-loop callback.

    ``threshold_s`` is the loop-hold budget; ``clock`` defaults to
    :func:`repro.timing.monotonic` and is called immediately before and
    after each callback.  Install is idempotent and reversible; nesting
    two detectors is not supported (the second ``install`` is a no-op).
    """

    def __init__(
        self,
        threshold_s: float = 0.1,
        clock: timing.Clock = timing.monotonic,
        on_slow: Callable[[SlowCallback], None] | None = None,
    ) -> None:
        self.threshold_s = threshold_s
        self.clock = clock
        self.on_slow = on_slow
        self.records: list[SlowCallback] = []
        self._original: Callable[[Any], None] | None = None

    @property
    def installed(self) -> bool:
        return self._original is not None

    def install(self) -> None:
        if self._original is not None:
            return
        original = asyncio.events.Handle._run
        self._original = original
        detector = self

        def _timed_run(handle: Any) -> None:
            start = detector.clock()
            try:
                original(handle)
            finally:
                elapsed = detector.clock() - start
                if elapsed >= detector.threshold_s:
                    detector._record(handle, elapsed)

        asyncio.events.Handle._run = _timed_run  # type: ignore[method-assign]

    def uninstall(self) -> None:
        if self._original is not None:
            asyncio.events.Handle._run = self._original  # type: ignore[method-assign]
            self._original = None

    def _record(self, handle: Any, elapsed: float) -> None:
        record = SlowCallback(callback=self._describe(handle), duration_s=elapsed)
        self.records.append(record)
        logger.warning(
            "event loop blocked %.1f ms (threshold %.1f ms) by %s",
            record.duration_s * 1e3,
            self.threshold_s * 1e3,
            record.callback,
        )
        if self.on_slow is not None:
            self.on_slow(record)

    @staticmethod
    def _describe(handle: Any) -> str:
        callback = getattr(handle, "_callback", None)
        name = getattr(callback, "__qualname__", None)
        if name is None:
            name = repr(callback)
        return name

    def __enter__(self) -> "SlowCallbackDetector":
        self.install()
        return self

    def __exit__(self, *exc: object) -> None:
        self.uninstall()
