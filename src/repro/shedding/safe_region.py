"""Safe-region monitoring: the related-work alternative paradigm.

The paper's related work discusses distributed CQ systems [1, 3, 7]
where "position updates are only received if they affect a query
result" — each node gets a *safe region* and stays silent inside it.
LIRA can mimic this by setting Δ⊣ very large; the cost is that snapshot
and historic queries become unanswerable since far-from-query nodes are
effectively untracked.

This policy implements that paradigm as an extra baseline: a node's
inaccuracy threshold is its distance to the nearest installed query
boundary (clamped below by Δ⊢) — moving less than that distance cannot
change any result.  Nodes *inside* a query region use Δ⊢.  The policy
ignores the throttle fraction: its update volume is workload-driven,
not budget-driven (which is precisely what it cannot control under
overload — LIRA's reason for existing).
"""

from __future__ import annotations

import numpy as np

from repro.core.statistics_grid import StatisticsGrid
from repro.queries import RangeQuery
from repro.shedding.policy import SheddingPolicy


def distance_to_rect_boundary(positions: np.ndarray, rect) -> np.ndarray:
    """Distance from each point to the rectangle's boundary (0 on it).

    For outside points this is the distance to the rectangle; for inside
    points, the distance to the nearest edge.  Vectorized over points.
    """
    x, y = positions[:, 0], positions[:, 1]
    dx = np.maximum(np.maximum(rect.x1 - x, x - rect.x2), 0.0)
    dy = np.maximum(np.maximum(rect.y1 - y, y - rect.y2), 0.0)
    outside = np.hypot(dx, dy)
    inside_margin = np.minimum(
        np.minimum(x - rect.x1, rect.x2 - x),
        np.minimum(y - rect.y1, rect.y2 - y),
    )
    # reprolint: disable=REP010 - dx/dy are np.maximum(..., 0.0) outputs,
    # so "inside" is an exact comparison against that exact 0.0 clamp.
    inside = (dx == 0.0) & (dy == 0.0)
    return np.where(inside, np.maximum(inside_margin, 0.0), outside)


class SafeRegionPolicy(SheddingPolicy):
    """Per-node thresholds from distance to the nearest query boundary.

    ``slack`` scales the distance into a threshold conservatively
    (reports fire *before* a node could have crossed into a result),
    and ``delta_cap`` optionally bounds the threshold — ``None``
    reproduces the pure paradigm where far nodes are nearly untracked.
    """

    name = "Safe Region"

    def __init__(
        self,
        queries: list[RangeQuery],
        delta_min: float = 5.0,
        slack: float = 0.5,
        delta_cap: float | None = None,
    ) -> None:
        if not queries:
            raise ValueError("safe-region monitoring requires installed queries")
        if not (0.0 < slack <= 1.0):
            raise ValueError("slack must be in (0, 1]")
        if delta_cap is not None and delta_cap < delta_min:
            raise ValueError("delta_cap must be >= delta_min")
        self.queries = queries
        self.delta_min = delta_min
        self.slack = slack
        self.delta_cap = delta_cap

    def adapt(self, grid: StatisticsGrid, z: float) -> None:
        """No-op: safe regions depend on queries, not on load statistics."""

    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        positions = np.asarray(positions, dtype=np.float64)
        nearest = np.full(len(positions), np.inf)
        inside_any = np.zeros(len(positions), dtype=bool)
        for query in self.queries:
            d = distance_to_rect_boundary(positions, query.rect)
            x, y = positions[:, 0], positions[:, 1]
            inside = (
                (x >= query.rect.x1)
                & (x < query.rect.x2)
                & (y >= query.rect.y1)
                & (y < query.rect.y2)
            )
            inside_any |= inside
            nearest = np.minimum(nearest, d)
        thresholds = np.maximum(nearest * self.slack, self.delta_min)
        # Result membership must stay accurate for nodes inside queries.
        thresholds[inside_any] = self.delta_min
        if self.delta_cap is not None:
            thresholds = np.minimum(thresholds, self.delta_cap)
        return thresholds

    def describe(self) -> str:
        cap = f", cap={self.delta_cap}" if self.delta_cap is not None else ""
        return f"Safe Region (slack={self.slack}{cap}, {len(self.queries)} queries)"
