"""The full LIRA policy: region-aware partitioning + optimal throttlers."""

from __future__ import annotations

import numpy as np

from repro.core import LiraConfig, LiraLoadShedder, ReductionFunction
from repro.core.plan import SheddingPlan
from repro.core.statistics_grid import StatisticsGrid
from repro.shedding.policy import SheddingPolicy


class LiraPolicy(SheddingPolicy):
    """Region-aware load shedding via GRIDREDUCE + GREEDYINCREMENT.

    Thin policy adapter around :class:`~repro.core.LiraLoadShedder` so
    the simulator can swap LIRA against the baselines uniformly.
    """

    name = "LIRA"

    def __init__(
        self,
        config: LiraConfig,
        reduction: ReductionFunction,
        engine: str = "object",
    ) -> None:
        self.config = config
        self.shedder = LiraLoadShedder(config, reduction, engine=engine)
        self.alpha = config.resolved_alpha
        self.plan: SheddingPlan | None = None

    def adapt(self, grid: StatisticsGrid, z: float) -> None:
        self.shedder.set_throttle_fraction(z)
        self.plan = self.shedder.adapt(grid)

    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        if self.plan is None:
            raise RuntimeError("adapt() must run before thresholds_for()")
        return self.plan.thresholds_for(positions)

    def describe(self) -> str:
        return (
            f"LIRA(l={self.config.l}, alpha={self.alpha}, "
            f"fairness={self.config.fairness})"
        )
