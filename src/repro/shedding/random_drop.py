"""Random Drop baseline: server-actuated dropping of excess updates.

Every node reports at the ideal resolution Δ⊢; the overloaded server
admits only a fraction z of the arriving updates and discards the rest
at the input queue, uniformly at random.  This is what happens *without*
any intelligent load shedding — the paper's worst performer, included
to quantify the value of source-actuated, region-aware shedding.
"""

from __future__ import annotations

import numpy as np

from repro.core.statistics_grid import StatisticsGrid
from repro.shedding.policy import SheddingPolicy


class RandomDropPolicy(SheddingPolicy):
    """Δ⊢ everywhere; the server randomly drops ``1 − z`` of arrivals."""

    name = "Random Drop"

    def __init__(self, delta_min: float = 5.0) -> None:
        if delta_min < 0:
            raise ValueError("delta_min must be non-negative")
        self.delta_min = delta_min
        self.z = 1.0

    def adapt(self, grid: StatisticsGrid, z: float) -> None:
        if not (0.0 <= z <= 1.0):
            raise ValueError("z must be in [0, 1]")
        self.z = z

    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        return np.full(len(positions), self.delta_min, dtype=np.float64)

    def admission_fraction(self) -> float:
        return self.z

    def describe(self) -> str:
        return f"Random Drop (admit {self.z:.0%} of updates)"
