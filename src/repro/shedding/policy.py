"""Shedding-policy interface.

A policy answers two questions each adaptation period:

1. Which inaccuracy threshold must a node at position (x, y) use?
   (source-actuated shedding — dead-reckoning thresholds)
2. What fraction of arriving updates does the server admit?
   (server-actuated shedding — random dropping)

LIRA and its downgraded variants act through (1) and admit everything;
Random Drop acts through (2) with every node at Δ⊢.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.statistics_grid import StatisticsGrid


class SheddingPolicy(ABC):
    """Base class for update load-shedding policies."""

    #: Human-readable policy name, used in experiment tables.
    name: str = "abstract"

    #: Statistics-grid resolution the policy requires from the caller
    #: (α cells per side); policies that ignore statistics accept any.
    alpha: int = 1

    @abstractmethod
    def adapt(self, grid: StatisticsGrid, z: float) -> None:
        """Recompute internal state for throttle fraction ``z``.

        Called once per adaptation period with fresh grid statistics.
        """

    @abstractmethod
    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        """Per-node inaccuracy thresholds for nodes at ``positions`` (n, 2)."""

    def admission_fraction(self) -> float:
        """Fraction of arriving updates the server admits (default: all)."""
        return 1.0

    def describe(self) -> str:
        """One-line description for logs and experiment output."""
        return self.name
