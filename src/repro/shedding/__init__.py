"""Load-shedding policies: LIRA and the paper's three baselines."""

from repro.shedding.lira import LiraPolicy
from repro.shedding.lira_grid import LiraGridPolicy
from repro.shedding.policy import SheddingPolicy
from repro.shedding.random_drop import RandomDropPolicy
from repro.shedding.safe_region import SafeRegionPolicy
from repro.shedding.uniform import UniformDeltaPolicy

__all__ = [
    "LiraGridPolicy",
    "LiraPolicy",
    "RandomDropPolicy",
    "SafeRegionPolicy",
    "SheddingPolicy",
    "UniformDeltaPolicy",
]
