"""Uniform-Δ baseline: one system-wide inaccuracy threshold.

The paper's non-region-aware alternative: THROTLOOP still chooses the
throttle fraction z, but every node uses the same Δ — the smallest
threshold whose update-reduction ``f(Δ)`` meets the budget.  No space
partitioning, no per-region throttlers.
"""

from __future__ import annotations

import numpy as np

from repro.core import ReductionFunction
from repro.core.statistics_grid import StatisticsGrid
from repro.shedding.policy import SheddingPolicy


class UniformDeltaPolicy(SheddingPolicy):
    """A single inaccuracy threshold chosen to retain z of the updates."""

    name = "Uniform Delta"

    def __init__(self, reduction: ReductionFunction) -> None:
        self.reduction = reduction
        self.delta: float | None = None

    def adapt(self, grid: StatisticsGrid, z: float) -> None:
        self.delta = self.reduction.delta_for_fraction(z)

    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        if self.delta is None:
            raise RuntimeError("adapt() must run before thresholds_for()")
        return np.full(len(positions), self.delta, dtype=np.float64)

    def describe(self) -> str:
        if self.delta is None:
            return "Uniform Delta (not adapted yet)"
        return f"Uniform Delta (delta={self.delta:.2f} m)"
