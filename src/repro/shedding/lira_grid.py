"""Lira-Grid baseline: uniform partitioning, optimal throttlers.

The paper's downgraded LIRA variant: it lacks GRIDREDUCE and instead
uses equal-sized shedding regions from a plain *l-partitioning*
(√l × √l uniform grid), but still runs GREEDYINCREMENT to set the
update throttlers.  Comparing it against full LIRA isolates the value
of region-aware partitioning (paper Figure 8).
"""

from __future__ import annotations

import numpy as np

from repro.core import LiraConfig, ReductionFunction, greedy_increment
from repro.core.gridreduce import uniform_partitioning
from repro.core.plan import SheddingPlan
from repro.core.statistics_grid import StatisticsGrid
from repro.shedding.policy import SheddingPolicy


class LiraGridPolicy(SheddingPolicy):
    """Uniform l-partitioning + GREEDYINCREMENT throttler setting."""

    name = "Lira-Grid"

    def __init__(
        self,
        config: LiraConfig,
        reduction: ReductionFunction,
        engine: str = "object",
    ) -> None:
        self.config = config
        self.reduction = reduction.piecewise(config.n_segments)
        self.alpha = config.resolved_alpha
        self.engine = engine
        self.plan: SheddingPlan | None = None

    def adapt(self, grid: StatisticsGrid, z: float) -> None:
        partitioning = uniform_partitioning(grid, self.config.l)
        result = greedy_increment(
            partitioning.regions,
            self.reduction,
            z,
            increment=self.config.increment,
            fairness=self.config.fairness,
            use_speed=self.config.use_speed,
            engine=self.engine,
        )
        self.plan = SheddingPlan.from_regions(
            bounds=grid.bounds,
            regions=partitioning.regions,
            thresholds=result.thresholds,
            resolution=grid.alpha,
        )

    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        if self.plan is None:
            raise RuntimeError("adapt() must run before thresholds_for()")
        return self.plan.thresholds_for(positions)

    def describe(self) -> str:
        side = max(int(self.config.l**0.5), 1)
        return f"Lira-Grid(l={self.config.l} -> {side}x{side} uniform regions)"
