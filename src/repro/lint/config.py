"""Per-rule and per-run configuration for reprolint.

The defaults encode this repository's determinism contract (see
``docs/lint_rules.md``); callers — tests, the CLI, future per-project
config files — override rule enablement, severity, and path allowlists
through :class:`LintConfig` without touching the rules themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.findings import Severity


@dataclass(frozen=True, slots=True)
class RuleConfig:
    """Overrides for a single rule."""

    enabled: bool = True
    #: ``None`` keeps the rule's own default severity.
    severity: Severity | None = None
    #: Extra fnmatch patterns (posix paths) exempt from this rule, on
    #: top of the rule's built-in allowlist.
    allow: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True)
class LintConfig:
    """One lint run's configuration."""

    #: Per-rule overrides, keyed by rule id (e.g. ``"REP002"``).
    rules: dict[str, RuleConfig] = field(default_factory=dict)
    #: Paths matching any of these patterns are "library code": rules
    #: marked ``library_only`` (determinism/invariant rules that would
    #: be noise in tests and scripts) only apply there.
    library_globs: tuple[str, ...] = ("*src/repro/*",)
    #: When set, only these rule ids run (plus REP000/REP999 meta rules).
    select: frozenset[str] | None = None
    #: Rule ids switched off for this run.
    ignore: frozenset[str] = frozenset()

    _META_RULES = frozenset({"REP000", "REP999"})

    def rule_config(self, rule_id: str) -> RuleConfig:
        return self.rules.get(rule_id, RuleConfig())

    def is_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        if (
            self.select is not None
            and rule_id not in self.select
            and rule_id not in self._META_RULES
        ):
            return False
        return self.rule_config(rule_id).enabled

    def severity_for(self, rule_id: str, default: Severity) -> Severity:
        override = self.rule_config(rule_id).severity
        return default if override is None else override
