"""Numeric-safety rules: float comparisons and mutable defaults."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register


def _is_float_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return True
    # A negated float literal (-1.5) parses as UnaryOp(USub, Constant).
    return (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, (ast.USub, ast.UAdd))
        and _is_float_literal(node.operand)
    )


@register
class FloatLiteralEquality(Rule):
    """``==`` / ``!=`` against a float literal.

    Exact float equality is almost always a rounding-error bug waiting
    for a different BLAS or optimization level.  The deliberate
    exceptions in this codebase — exact zero-geometry guards like
    ``norm == 0.0`` that short-circuit degenerate segments *before* any
    arithmetic happens — carry explicit, justified suppressions.
    """

    id = "REP010"
    name = "float-literal-eq"
    summary = "float ==/!= against a literal (use tolerances)"
    library_only = True
    node_types = (ast.Compare,)

    def check(self, node: ast.Compare, ctx: FileContext) -> Iterator[Finding]:
        left: ast.AST = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                _is_float_literal(left) or _is_float_literal(right)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "exact float comparison against a literal; use a "
                    "tolerance (math.isclose/np.isclose) or suppress with a "
                    "justification if the exact-zero guard is intentional",
                )
                return  # one finding per comparison chain is enough
            left = right


_MUTABLE_CALLS = (
    "list", "dict", "set", "bytearray",
    "collections.defaultdict", "defaultdict",
    "collections.Counter", "Counter",
    "collections.deque", "deque",
    "collections.OrderedDict", "OrderedDict",
)


@register
class MutableDefaultArgument(Rule):
    """A mutable default argument: shared state across calls.

    The default is evaluated once at ``def`` time, so every call that
    omits the argument shares (and mutates) the same object — classic
    cross-run, cross-test contamination.  Default to ``None`` and
    materialize inside the function, or use a tuple/frozenset.
    """

    id = "REP011"
    name = "mutable-default"
    summary = "mutable default argument shared across calls"
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda))
        args = node.args
        defaults = list(args.defaults) + [d for d in args.kw_defaults if d]
        for default in defaults:
            if self._is_mutable(default, ctx):
                yield self.finding(
                    ctx,
                    default,
                    "mutable default argument is evaluated once and shared "
                    "by every call; default to None (or a tuple) instead",
                )

    @staticmethod
    def _is_mutable(node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(
            node,
            (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
        ):
            return True
        return (
            isinstance(node, ast.Call) and ctx.resolve(node.func) in _MUTABLE_CALLS
        )
