"""Process-pool hygiene: callables crossing the pool seam must pickle.

The parallel sweep engine (``repro.experiments.runner``) fans jobs over
a ``ProcessPoolExecutor``.  Lambdas and locally-defined closures don't
pickle, so handing one to ``pool.map`` / ``submit`` / the pool
``initializer`` works in-process (``n_workers=1`` short-circuit, or a
fork start method that never repickles) and then explodes — or worse,
silently diverges — on spawn.  Only module-level functions cross the
seam.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

from repro.lint.knowledge import (
    POOL_CONSTRUCTORS as _POOL_CONSTRUCTORS,
    POOL_METHODS as _POOL_METHODS,
)


def _is_pool(expr: ast.AST, ctx: FileContext) -> bool:
    """Heuristic: the receiver is a process pool/executor."""
    if not isinstance(expr, ast.Name):
        return False
    lowered = expr.id.lower()
    if "pool" in lowered or "executor" in lowered:
        return True
    value = ctx.local_value(expr.id)
    if isinstance(value, ast.Call):
        qualname = ctx.resolve(value.func)
        return qualname in _POOL_CONSTRUCTORS
    return False


def _unpicklable(expr: ast.AST, ctx: FileContext) -> bool:
    """Lambda, or a name bound to a function nested in the current scope."""
    if isinstance(expr, ast.Lambda):
        return True
    if isinstance(expr, ast.Name):
        scope = ctx.enclosing_scope()
        if not isinstance(scope, ast.Module):
            return expr.id in ctx.scope_info(scope).nested_functions
    return False


@register
class UnpicklablePoolCallable(Rule):
    """Lambda or closure handed to a process-pool seam."""

    id = "REP030"
    name = "unpicklable-pool-callable"
    summary = "lambda/closure passed to a process pool cannot pickle"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        func = node.func
        qualname = ctx.resolve(func)
        if qualname is not None and qualname.rpartition(".")[2] in (
            "ProcessPoolExecutor",
            "Pool",
        ):
            if qualname in _POOL_CONSTRUCTORS or qualname.rpartition(".")[0] == "":
                for kw in node.keywords:
                    if kw.arg == "initializer" and _unpicklable(kw.value, ctx):
                        yield self.finding(
                            ctx,
                            kw.value,
                            "pool initializer must be a module-level function "
                            "(lambdas/closures do not pickle under spawn)",
                        )
            return
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and _is_pool(func.value, ctx)
            and node.args
            and _unpicklable(node.args[0], ctx)
        ):
            yield self.finding(
                ctx,
                node.args[0],
                f"callable passed to {func.attr}() on a process pool must "
                "be module-level: lambdas and nested functions do not "
                "pickle under the spawn start method",
            )
