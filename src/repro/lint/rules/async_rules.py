"""Async rules: the event loop must stay responsive and tasks owned.

The live service (:mod:`repro.service`) runs load shedding on an
asyncio loop with millisecond SLOs — one synchronous sleep or file read
in a coroutine stalls every connection.  These rules flag the four ways
asyncio code quietly rots: blocking calls on the loop (REP040), bare
statement calls of coroutine functions (REP041), fire-and-forget tasks
whose exceptions vanish (REP042), and awaits while holding a
synchronous lock (REP043).

REP040 uses the project index's ``blocks`` taint, so a helper that
wraps ``time.sleep`` two modules away is flagged at its ``await``-less
call site inside a coroutine; deferring through ``asyncio.to_thread`` /
``run_in_executor`` clears the taint (the executor absorbs the block).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import knowledge
from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.project import chain_text
from repro.lint.registry import Rule, register


def _in_async_function(ctx: FileContext) -> bool:
    """True when the current node's innermost function is ``async def``."""
    return isinstance(ctx.enclosing_function(), ast.AsyncFunctionDef)


@register
class BlockingCallInAsync(Rule):
    """Synchronous blocking call on the event loop."""

    id = "REP040"
    name = "blocking-call-in-async"
    summary = "blocking call inside async def stalls the event loop"
    library_only = True
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not _in_async_function(ctx):
            return
        qualname = ctx.resolve(node.func)
        if qualname in knowledge.BLOCKING_CALLS:
            yield self.finding(
                ctx,
                node,
                f"{qualname} blocks the event loop inside async def; use "
                "the async equivalent or defer via asyncio.to_thread / "
                "loop.run_in_executor",
            )
            return
        chain = ctx.project_taints(node).get("blocks")
        if chain is not None:
            yield self.finding(
                ctx,
                node,
                "call reaches a blocking operation inside async def "
                f"({chain_text(chain)}); defer via asyncio.to_thread / "
                "loop.run_in_executor",
            )


@register
class UnawaitedCoroutine(Rule):
    """Coroutine called as a bare statement — it never runs."""

    id = "REP041"
    name = "unawaited-coroutine"
    summary = "bare call of an async function discards the coroutine"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.stack or not isinstance(ctx.stack[-1], ast.Expr):
            return
        qualname = ctx.resolve(node.func)
        if qualname in knowledge.KNOWN_COROUTINE_FNS:
            yield self.finding(
                ctx,
                node,
                f"{qualname}(...) returns an awaitable that is discarded; "
                "await it (or schedule it as a task)",
            )
            return
        if ctx.project is not None and ctx.project.is_async_callable(
            ctx.module_name, ctx.resolve_call(node)
        ):
            yield self.finding(
                ctx,
                node,
                "async function called without await: the coroutine object "
                "is discarded and the body never runs",
            )


@register
class BareCreateTask(Rule):
    """Task created with no owner: its exception disappears.

    A task whose last reference is dropped can be garbage-collected
    mid-flight, and one that dies with an exception logs nothing until
    interpreter exit (if ever).  Keep the returned handle *and* attach
    ``add_done_callback`` (or await the task) so failures surface.
    """

    id = "REP042"
    name = "bare-create-task"
    summary = "create_task result unretained or unobserved"
    library_only = True
    node_types = (ast.Call,)

    _SPAWNERS = ("create_task", "ensure_future")

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        func = node.func
        is_spawner = (
            isinstance(func, ast.Attribute) and func.attr in self._SPAWNERS
        ) or (isinstance(func, ast.Name) and func.id in self._SPAWNERS)
        if not is_spawner or not ctx.stack:
            return
        parent = ctx.stack[-1]
        discarded = isinstance(parent, ast.Expr)
        collected = isinstance(parent, (ast.List, ast.Tuple, ast.Set))
        if not discarded and not collected:
            return
        if not discarded and self._scope_observes_tasks(ctx):
            return
        yield self.finding(
            ctx,
            node,
            "task spawned without observing its outcome: retain the handle "
            "and attach add_done_callback (or await it) so a crash in the "
            "task is surfaced instead of silently dropped",
        )

    @staticmethod
    def _scope_observes_tasks(ctx: FileContext) -> bool:
        """True when the enclosing function wires done-callbacks somewhere."""
        scope = ctx.enclosing_scope()
        for sub in ast.walk(scope):
            if isinstance(sub, ast.Attribute) and sub.attr == "add_done_callback":
                return True
        return False


@register
class AwaitHoldingLock(Rule):
    """``await`` while holding a synchronous lock.

    The coroutine parks at the await with the lock held; any other
    coroutine (or thread) contending for it deadlocks the loop.  Use
    ``asyncio.Lock`` with ``async with``, or release before awaiting.
    """

    id = "REP043"
    name = "await-holding-lock"
    summary = "await inside `with <lock>:` can deadlock the event loop"
    node_types = (ast.Await,)

    def check(self, node: ast.Await, ctx: FileContext) -> Iterator[Finding]:
        for ancestor in reversed(ctx.stack):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return
            if isinstance(ancestor, ast.With):
                for item in ancestor.items:
                    if self._is_sync_lock(item.context_expr, ctx):
                        yield self.finding(
                            ctx,
                            node,
                            "await while holding a synchronous lock: other "
                            "waiters block the whole event loop; use "
                            "asyncio.Lock with `async with` or release "
                            "before awaiting",
                        )
                        return

    @staticmethod
    def _is_sync_lock(expr: ast.expr, ctx: FileContext) -> bool:
        if isinstance(expr, ast.Call):
            return ctx.resolve(expr.func) in knowledge.SYNC_LOCK_CONSTRUCTORS
        terminal = None
        if isinstance(expr, ast.Name):
            terminal = expr.id
            value = ctx.local_value(expr.id)
            if isinstance(value, ast.Call):
                if ctx.resolve(value.func) in knowledge.SYNC_LOCK_CONSTRUCTORS:
                    return True
        elif isinstance(expr, ast.Attribute):
            terminal = expr.attr
        return terminal is not None and "lock" in terminal.lower()
