"""Paper-invariant rules: LIRA's Δ-bounds, fairness, and policy surface.

The paper's contract for any shedding plan is Δ⊢ ≤ Δᵢ ≤ Δ⊣ with
``max Δᵢ − min Δᵢ ≤ Δ⇔`` (fairness).  Two seams enforce it at runtime:
``greedy_increment`` (which constructs thresholds inside the bounds) and
``clamp_thresholds`` (which projects hand-built thresholds into them).
These rules make sure no plan construction bypasses those seams, and
that everything quacking like a shedding policy declares the common
interface the experiment harness dispatches on.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: Callables whose result satisfies the Δ-bound/fairness invariants.
_BLESSED_PRODUCERS = ("greedy_increment", "clamp_thresholds")


def _producer_name(node: ast.AST, ctx: FileContext) -> str | None:
    """The blessed producer behind a call expression, if any."""
    if isinstance(node, ast.Call):
        qualname = ctx.resolve(node.func)
        if qualname is not None and qualname.rpartition(".")[2] in _BLESSED_PRODUCERS:
            return qualname.rpartition(".")[2]
    return None


def _is_blessed_thresholds(node: ast.AST, ctx: FileContext, depth: int = 0) -> bool:
    """True when the thresholds expression routes through a blessed seam.

    Recognized shapes (following simple local assignments):

    * ``clamp_thresholds(...)`` directly;
    * ``greedy_increment(...).thresholds``;
    * ``result.thresholds`` where ``result = greedy_increment(...)``;
    * a name bound to any of the above.
    """
    if depth > 4:
        return False
    if _producer_name(node, ctx) is not None:
        return True
    if isinstance(node, ast.Attribute) and node.attr == "thresholds":
        base = node.value
        if _producer_name(base, ctx) is not None:
            return True
        if isinstance(base, ast.Name):
            value = ctx.local_value(base.id)
            if value is not None and _producer_name(value, ctx) is not None:
                return True
        return False
    if isinstance(node, ast.Name):
        value = ctx.local_value(node.id)
        if value is not None and value is not node:
            return _is_blessed_thresholds(value, ctx, depth + 1)
    return False


@register
class UnclampedPlanConstruction(Rule):
    """Plan built without the Δ-bound / fairness clamping seam.

    ``SheddingPlan.from_regions`` validates raster alignment but trusts
    its thresholds; handing it raw numbers skips the Δ⊢/Δ⊣ domain and
    Δ⇔ fairness guarantees every consumer (validation, the simulator,
    the broadcast layer) relies on.  Thresholds must come from
    ``greedy_increment(...)`` or be projected with
    ``clamp_thresholds(...)``; the bare ``SheddingPlan(...)``
    constructor is reserved for ``repro.core.plan`` itself.
    """

    id = "REP020"
    name = "unclamped-plan"
    summary = "plan thresholds bypass greedy_increment/clamp_thresholds"
    library_only = True
    default_allow = ("*/repro/core/plan.py",)
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        func = node.func
        if isinstance(func, ast.Name) and func.id == "SheddingPlan":
            yield self.finding(
                ctx,
                node,
                "direct SheddingPlan(...) construction skips raster and "
                "threshold validation; build plans via "
                "SheddingPlan.from_regions(...)",
            )
            return
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "from_regions"
            and isinstance(func.value, ast.Name)
            and func.value.id in ("SheddingPlan", "cls")
        ):
            return
        thresholds = next(
            (kw.value for kw in node.keywords if kw.arg == "thresholds"),
            node.args[2] if len(node.args) > 2 else None,
        )
        if thresholds is None or _is_blessed_thresholds(thresholds, ctx):
            return
        yield self.finding(
            ctx,
            thresholds,
            "thresholds handed to SheddingPlan.from_regions without the "
            "clamping seam; route them through greedy_increment(...) or "
            "clamp_thresholds(...) so Δ⊢ ≤ Δᵢ ≤ Δ⊣ and the fairness "
            "spread hold",
        )


@register
class UndeclaredPolicyInterface(Rule):
    """A shedding-policy lookalike that skips the common interface.

    Classes implementing both ``adapt`` and ``thresholds_for`` are
    policies in every way that matters to the experiment harness — but
    unless they subclass :class:`repro.shedding.policy.SheddingPolicy`
    they silently miss the shared surface (``admission_fraction``,
    ``describe``, the ``name``/``alpha`` declarations) the harness and
    the systems loop dispatch on.
    """

    id = "REP021"
    name = "undeclared-policy"
    summary = "policy-shaped class does not subclass SheddingPolicy"
    library_only = True
    node_types = (ast.ClassDef,)

    _EXEMPT_BASES = {"ABC", "Protocol", "SheddingPolicy"}

    def check(self, node: ast.ClassDef, ctx: FileContext) -> Iterator[Finding]:
        methods = {
            stmt.name
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if not {"adapt", "thresholds_for"} <= methods:
            return
        base_names = set()
        for base in node.bases:
            qualname = ctx.resolve(base)
            if qualname is not None:
                base_names.add(qualname.rpartition(".")[2])
        if node.name == "SheddingPolicy" or base_names & self._EXEMPT_BASES:
            return
        if any(name.endswith("Policy") for name in base_names):
            return  # subclass of a concrete policy inherits the interface
        yield self.finding(
            ctx,
            node,
            f"class {node.name} implements adapt()/thresholds_for() but "
            "does not subclass repro.shedding.policy.SheddingPolicy; "
            "declare the common policy interface",
        )
