"""Meta rules: findings the engine emits itself.

These carry no ``node_types`` — the engine raises them directly — but
registering them keeps them visible to ``--list-rules`` and
configurable (severity, ``--ignore``) like any other rule.
"""

from __future__ import annotations

from repro.lint.registry import Rule, register


@register
class UnusedSuppression(Rule):
    """A ``# reprolint: disable=...`` comment that masked no finding.

    Suppressions document deliberate exceptions; one that no longer
    masks anything is stale and hides nothing but information.  Delete
    it (or fix its rule id / placement).
    """

    id = "REP000"
    name = "unused-suppression"
    summary = "suppression comment masks no finding"


@register
class ParseFailure(Rule):
    """The file could not be parsed as Python; nothing else was checked."""

    id = "REP999"
    name = "parse-failure"
    summary = "file does not parse; no rules were checked"
