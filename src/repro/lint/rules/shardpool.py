"""Shard & pool rules: work crossing process boundaries stays pure.

The sharded deployment (:mod:`repro.server.sharded`) and the sweep
engine (:mod:`repro.experiments.runner`) both fan work over process
pools.  A job callable that mutates module globals diverges between
in-process and spawned execution (REP050); a reduction helper that
iterates shard-keyed containers unordered makes merge results depend on
insertion history (REP051, the interprocedural face of REP031); and an
unpicklable object anywhere in a pool call's *arguments* — not just the
callable slot REP030 guards — explodes only under spawn (REP052).

Pool ``initializer=`` callables are deliberately exempt from REP050:
installing per-worker module globals is exactly what an initializer is
for (each process owns its copy), and the sharded server uses that
sanctioned pattern.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.project import chain_text
from repro.lint.registry import Rule, register
from repro.lint.rules.pools import _POOL_METHODS, _is_pool, _unpicklable


def _pool_job_call(node: ast.Call, ctx: FileContext) -> ast.Attribute | None:
    """The ``pool.method`` attribute when ``node`` ships work to a pool."""
    func = node.func
    if (
        isinstance(func, ast.Attribute)
        and func.attr in _POOL_METHODS
        and _is_pool(func.value, ctx)
        and node.args
    ):
        return func
    return None


@register
class PoolWorkerGlobalMutation(Rule):
    """Job callable that (transitively) mutates module-global state."""

    id = "REP050"
    name = "pool-worker-global-mutation"
    summary = "pool job callable mutates module globals"
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if _pool_job_call(node, ctx) is None or ctx.project is None:
            return
        job = node.args[0]
        if not isinstance(job, (ast.Name, ast.Attribute)):
            return
        taints = ctx.project.taints_of(ctx.module_name, ctx.resolve(job))
        chain = taints.get("global_mutation")
        if chain is not None:
            yield self.finding(
                ctx,
                job,
                "pool job callable mutates module-global state "
                f"({chain_text(chain)}): workers diverge from in-process "
                "runs; return results and merge in the parent (per-worker "
                "state belongs in the pool initializer)",
            )


@register
class UnorderedCrossShardReduce(Rule):
    """Call into a helper that iterates shard maps unordered.

    REP031 flags the iteration at its definition; this rule carries the
    taint across module boundaries so the *reduction call site* is
    flagged even when the unordered combine lives elsewhere.  Same-file
    callees are left to REP031 to avoid double reports.
    """

    id = "REP051"
    name = "unordered-cross-shard-reduce"
    summary = "cross-module call reaches unordered shard iteration"
    library_only = True
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        if ctx.project is None:
            return
        callee = ctx.resolve_call(node)
        chain = ctx.project.taints_of(ctx.module_name, callee).get("shard_iter")
        if chain is None:
            return
        if ctx.project.defining_module(ctx.module_name, callee) == ctx.module_name:
            return
        yield self.finding(
            ctx,
            node,
            "call reaches unordered iteration over a shard-keyed container "
            f"({chain_text(chain)}); combine shard results in sorted shard-id "
            "order so floating-point reduction order is fixed",
        )


@register
class UnpicklablePoolArgument(Rule):
    """Lambda/closure anywhere in a pool call's argument payload.

    REP030 guards the callable slot; this rule covers the rest of the
    payload — positional arguments, keywords, and callables tucked
    inside ``functools.partial(...)`` — all of which must pickle to
    reach a spawned worker.
    """

    id = "REP052"
    name = "unpicklable-pool-argument"
    summary = "unpicklable object in pool call arguments"
    node_types = (ast.Call,)

    _PARTIALS = ("functools.partial", "partial")

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        method = _pool_job_call(node, ctx)
        if method is None:
            return
        payload = list(node.args[1:]) + [kw.value for kw in node.keywords]
        for expr in payload:
            yield from self._flag_unpicklable(expr, method.attr, ctx)

    def _flag_unpicklable(
        self, expr: ast.expr, method: str, ctx: FileContext
    ) -> Iterator[Finding]:
        if _unpicklable(expr, ctx):
            kind = "lambda" if isinstance(expr, ast.Lambda) else "nested function"
            yield self.finding(
                ctx,
                expr,
                f"{kind} in {method}() arguments does not pickle under the "
                "spawn start method; pass module-level callables and plain "
                "data across the pool seam",
            )
            return
        if isinstance(expr, ast.Call) and ctx.resolve(expr.func) in self._PARTIALS:
            for sub in list(expr.args) + [kw.value for kw in expr.keywords]:
                yield from self._flag_unpicklable(sub, method, ctx)
