"""Determinism rules: the same seed and spec must give identical bits.

Everything downstream — the on-disk scenario cache, pool-vs-serial
equivalence, the fault-injection regression suite — assumes simulation
output is a pure function of ``(spec, seed)``.  These rules flag the
classic ways that promise quietly breaks: unseeded or global-state RNGs,
wall-clock reads, iteration over unordered containers, and environment
variables steering library behavior.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

#: numpy legacy global-state API: order-sensitive process-wide state.
_NP_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "bytes", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "beta", "binomial", "poisson",
    "exponential", "gamma", "rayleigh", "vonmises", "lognormal",
    "geometric", "hypergeometric", "laplace", "logistic", "multinomial",
    "multivariate_normal", "pareto", "power", "triangular", "wald",
    "weibull", "zipf",
}

#: stdlib ``random`` module-level functions (hidden shared Random()).
_STDLIB_RANDOM = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "randbytes",
}

#: RNG constructors that must receive an explicit seed.
_RNG_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "random.Random",
}

#: Wall-clock reads (flagged as attribute/name references, so both
#: ``time.time()`` calls and ``timer=time.time`` aliases are caught).
_CLOCKS = {
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
}

_ENV_READS = {"os.environ", "os.getenv", "os.environb"}


@register
class UnseededRng(Rule):
    """Unseeded RNG construction or global-state random APIs.

    ``np.random.default_rng()`` without a seed draws OS entropy; the
    legacy ``np.random.*`` / ``random.*`` module functions mutate
    process-wide state that any import can perturb.  Every RNG in
    library code must be a generator constructed from an explicit seed
    (or be passed one, like the trace engines do).
    """

    id = "REP001"
    name = "unseeded-rng"
    summary = "unseeded default_rng()/Random() or global np.random/random call"
    library_only = True
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        qualname = ctx.resolve(node.func)
        if qualname is None:
            return
        if qualname in _RNG_CONSTRUCTORS:
            seeded = bool(node.args or node.keywords)
            if node.args and isinstance(node.args[0], ast.Constant):
                seeded = node.args[0].value is not None
            if not seeded:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname}() without a seed draws OS entropy; pass an "
                    "explicit seed so runs are reproducible",
                )
            return
        prefix, _, tail = qualname.rpartition(".")
        if prefix == "numpy.random" and tail in _NP_LEGACY:
            yield self.finding(
                ctx,
                node,
                f"numpy.random.{tail} uses numpy's global RNG state; use a "
                "seeded np.random.default_rng(seed) generator instead",
            )
        elif (
            prefix == "random"
            and tail in _STDLIB_RANDOM
            and ctx.imports.get("random") == "random"
        ):
            yield self.finding(
                ctx,
                node,
                f"random.{tail} uses the shared module-level RNG; use a "
                "seeded random.Random(seed) (or numpy generator) instead",
            )


@register
class WallClockRead(Rule):
    """Wall-clock reads outside the timing-harness seam.

    A clock read in simulation or algorithm code makes output depend on
    the host's scheduler.  All timing goes through
    :mod:`repro.timing` (re-exported by ``repro.metrics.cost``), the one
    allowlisted module; everything else must take durations as data.
    """

    id = "REP002"
    name = "wall-clock-read"
    summary = "wall-clock read outside the repro.timing harness"
    default_allow = ("*/repro/timing.py", "repro/timing.py")
    node_types = (ast.Attribute, ast.Name)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Name):
            if not isinstance(node.ctx, ast.Load):
                return
            qualname = ctx.from_imports.get(node.id)
        else:
            assert isinstance(node, ast.Attribute)
            qualname = ctx.resolve(node)
        if qualname in _CLOCKS:
            yield self.finding(
                ctx,
                node,
                f"{qualname} read outside the timing harness; route through "
                "repro.timing.Stopwatch (see repro.metrics.cost)",
            )


def _is_set_expr(node: ast.AST, ctx: FileContext, _depth: int = 0) -> bool:
    """True when ``node`` statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, ctx, _depth) or _is_set_expr(
            node.right, ctx, _depth
        )
    if isinstance(node, ast.Name) and _depth < 4:
        value = ctx.local_value(node.id)
        if value is not None and value is not node:
            return _is_set_expr(value, ctx, _depth + 1)
    return False


@register
class UnorderedIteration(Rule):
    """Iterating a set where the order can leak into output.

    Set iteration order depends on insertion history and — for strings
    — on per-process hash randomization, so any ordered artifact built
    from it (lists, files, report rows) can differ between runs.  Sort
    first (``sorted(...)`` with an explicit key) or keep insertion
    order with a dict.  Dict/dict-view iteration is insertion-ordered
    in Python 3.7+ and is deliberately not flagged.
    """

    id = "REP003"
    name = "unordered-iteration"
    summary = "iteration over a set feeds order-sensitive output"
    node_types = (ast.For, ast.comprehension, ast.Call)

    #: Callables that materialize their argument's iteration order.
    _ORDERING_SINKS = ("list", "tuple", "enumerate", "iter", "next")

    #: Reducers whose result does not depend on iteration order: a
    #: comprehension consumed directly by one of these is safe.
    _ORDER_INSENSITIVE = (
        "any", "all", "sum", "max", "min", "len", "sorted", "set",
        "frozenset", "math.fsum",
    )

    def _in_order_insensitive_sink(self, ctx: FileContext) -> bool:
        """True when the visited comprehension feeds an unordered reducer."""
        if not ctx.stack:
            return False
        owner = ctx.stack[-1]  # the GeneratorExp/ListComp/SetComp/DictComp
        if isinstance(owner, ast.SetComp):
            return True  # a set built from a set stays unordered
        if isinstance(owner, (ast.GeneratorExp, ast.ListComp)) and len(ctx.stack) > 1:
            call = ctx.stack[-2]
            return (
                isinstance(call, ast.Call)
                and bool(call.args)
                and call.args[0] is owner
                and ctx.resolve(call.func) in self._ORDER_INSENSITIVE
            )
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.comprehension)):
            if isinstance(node, ast.comprehension) and self._in_order_insensitive_sink(
                ctx
            ):
                return
            iterable = node.iter
            if _is_set_expr(iterable, ctx):
                yield self.finding(
                    ctx,
                    iterable,
                    "iterating a set: the order is not deterministic across "
                    "runs; wrap in sorted(...) or use an insertion-ordered "
                    "dict",
                )
        elif isinstance(node, ast.Call):
            if (
                ctx.resolve(node.func) in self._ORDERING_SINKS
                and node.args
                and _is_set_expr(node.args[0], ctx)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "materializing a set's iteration order; wrap in "
                    "sorted(...) before building ordered output",
                )


@register
class EnvironRead(Rule):
    """``os.environ`` reads outside the documented configuration seams.

    Environment variables are invisible inputs: two runs of the same
    command can differ without any change to spec or seed.  Only the
    cache module (``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``) and CLI
    entry points may consult them; library code takes parameters.
    """

    id = "REP004"
    name = "environ-read"
    summary = "os.environ access outside sim/cache.py and CLI entry points"
    library_only = True
    default_allow = ("*/repro/sim/cache.py", "*/__main__.py")
    node_types = (ast.Attribute, ast.Name)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Name):
            if not isinstance(node.ctx, ast.Load):
                return
            qualname = ctx.from_imports.get(node.id)
        else:
            assert isinstance(node, ast.Attribute)
            qualname = ctx.resolve(node)
        if qualname in _ENV_READS:
            yield self.finding(
                ctx,
                node,
                f"{qualname} accessed outside the config seams "
                "(repro.sim.cache, __main__ entry points); pass explicit "
                "parameters instead",
            )
