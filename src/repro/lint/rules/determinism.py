"""Determinism rules: the same seed and spec must give identical bits.

Everything downstream — the on-disk scenario cache, pool-vs-serial
equivalence, the fault-injection regression suite — assumes simulation
output is a pure function of ``(spec, seed)``.  These rules flag the
classic ways that promise quietly breaks: unseeded or global-state RNGs,
wall-clock reads, iteration over unordered containers, and environment
variables steering library behavior.

REP001/REP002/REP004 are *interprocedural*: alongside the direct
primitive reference, each also fires on any call whose callee —
resolved through the project index — transitively performs the effect.
A helper that reads ``time.time()`` three modules away is flagged at
every reachable call site, with the witness chain in the message.
Routing through a seam module (``repro.timing`` for clocks, the
cache/CLI/sanitizer modules for the environment) absorbs the taint; see
:mod:`repro.lint.project`.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint import knowledge
from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.project import chain_text
from repro.lint.registry import Rule, register

_NP_LEGACY = knowledge.NP_LEGACY_GLOBAL_FNS
_STDLIB_RANDOM = knowledge.STDLIB_RANDOM_FNS
_RNG_CONSTRUCTORS = knowledge.RNG_CONSTRUCTORS
_CLOCKS = knowledge.CLOCK_READS
_ENV_READS = knowledge.ENV_READS


@register
class UnseededRng(Rule):
    """Unseeded RNG construction or global-state random APIs.

    ``np.random.default_rng()`` without a seed draws OS entropy; the
    legacy ``np.random.*`` / ``random.*`` module functions mutate
    process-wide state that any import can perturb.  Every RNG in
    library code must be a generator constructed from an explicit seed
    (or be passed one, like the trace engines do).  Calls into project
    functions that transitively draw unseeded randomness are flagged
    too.
    """

    id = "REP001"
    name = "unseeded-rng"
    summary = "unseeded default_rng()/Random() or global np.random/random call"
    library_only = True
    node_types = (ast.Call,)

    def check(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        qualname = ctx.resolve(node.func)
        if qualname is None:
            yield from self._check_transitive(node, ctx)
            return
        if qualname in _RNG_CONSTRUCTORS:
            seeded = bool(node.args or node.keywords)
            if node.args and isinstance(node.args[0], ast.Constant):
                seeded = node.args[0].value is not None
            if not seeded:
                yield self.finding(
                    ctx,
                    node,
                    f"{qualname}() without a seed draws OS entropy; pass an "
                    "explicit seed so runs are reproducible",
                )
            return
        prefix, _, tail = qualname.rpartition(".")
        if prefix == "numpy.random" and tail in _NP_LEGACY:
            yield self.finding(
                ctx,
                node,
                f"numpy.random.{tail} uses numpy's global RNG state; use a "
                "seeded np.random.default_rng(seed) generator instead",
            )
        elif (
            prefix == "random"
            and tail in _STDLIB_RANDOM
            and ctx.imports.get("random") == "random"
        ):
            yield self.finding(
                ctx,
                node,
                f"random.{tail} uses the shared module-level RNG; use a "
                "seeded random.Random(seed) (or numpy generator) instead",
            )
        else:
            yield from self._check_transitive(node, ctx)

    def _check_transitive(self, node: ast.Call, ctx: FileContext) -> Iterator[Finding]:
        chain = ctx.project_taints(node).get("rng")
        if chain is not None:
            yield self.finding(
                ctx,
                node,
                "call reaches an unseeded/global RNG draw "
                f"({chain_text(chain)}); thread an explicit seeded generator "
                "through instead",
            )


@register
class WallClockRead(Rule):
    """Wall-clock reads outside the timing-harness seam.

    A clock read in simulation or algorithm code makes output depend on
    the host's scheduler.  All timing goes through
    :mod:`repro.timing` (re-exported by ``repro.metrics.cost``), the one
    allowlisted module; everything else must take durations as data.
    Calls to project functions that transitively read a clock are
    flagged at the call site with the witness chain — unless the chain
    passes through the timing seam, which absorbs it.
    """

    id = "REP002"
    name = "wall-clock-read"
    summary = "wall-clock read outside the repro.timing harness"
    default_allow = knowledge.CLOCK_SEAM_PATHS
    node_types = (ast.Attribute, ast.Name, ast.Call)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            chain = ctx.project_taints(node).get("clock")
            if chain is not None:
                yield self.finding(
                    ctx,
                    node,
                    "call reaches a wall-clock read outside the timing "
                    f"harness ({chain_text(chain)}); route through "
                    "repro.timing instead",
                )
            return
        if isinstance(node, ast.Name):
            if not isinstance(node.ctx, ast.Load):
                return
            qualname = ctx.from_imports.get(node.id)
        else:
            assert isinstance(node, ast.Attribute)
            qualname = ctx.resolve(node)
        if qualname in _CLOCKS:
            yield self.finding(
                ctx,
                node,
                f"{qualname} read outside the timing harness; route through "
                "repro.timing.Stopwatch (see repro.metrics.cost)",
            )


def _is_set_expr(node: ast.AST, ctx: FileContext, _depth: int = 0) -> bool:
    """True when ``node`` statically evaluates to a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) in ("set", "frozenset")
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, ctx, _depth) or _is_set_expr(
            node.right, ctx, _depth
        )
    if isinstance(node, ast.Name) and _depth < 4:
        value = ctx.local_value(node.id)
        if value is not None and value is not node:
            return _is_set_expr(value, ctx, _depth + 1)
    return False


@register
class UnorderedIteration(Rule):
    """Iterating a set where the order can leak into output.

    Set iteration order depends on insertion history and — for strings
    — on per-process hash randomization, so any ordered artifact built
    from it (lists, files, report rows) can differ between runs.  Sort
    first (``sorted(...)`` with an explicit key) or keep insertion
    order with a dict.  Dict/dict-view iteration is insertion-ordered
    in Python 3.7+ and is deliberately not flagged.
    """

    id = "REP003"
    name = "unordered-iteration"
    summary = "iteration over a set feeds order-sensitive output"
    node_types = (ast.For, ast.comprehension, ast.Call)

    #: Callables that materialize their argument's iteration order.
    _ORDERING_SINKS = ("list", "tuple", "enumerate", "iter", "next")

    #: Reducers whose result does not depend on iteration order: a
    #: comprehension consumed directly by one of these is safe.
    _ORDER_INSENSITIVE = (
        "any", "all", "sum", "max", "min", "len", "sorted", "set",
        "frozenset", "math.fsum",
    )

    def _in_order_insensitive_sink(self, ctx: FileContext) -> bool:
        """True when the visited comprehension feeds an unordered reducer."""
        if not ctx.stack:
            return False
        owner = ctx.stack[-1]  # the GeneratorExp/ListComp/SetComp/DictComp
        if isinstance(owner, ast.SetComp):
            return True  # a set built from a set stays unordered
        if isinstance(owner, (ast.GeneratorExp, ast.ListComp)) and len(ctx.stack) > 1:
            call = ctx.stack[-2]
            return (
                isinstance(call, ast.Call)
                and bool(call.args)
                and call.args[0] is owner
                and ctx.resolve(call.func) in self._ORDER_INSENSITIVE
            )
        return False

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, (ast.For, ast.comprehension)):
            if isinstance(node, ast.comprehension) and self._in_order_insensitive_sink(
                ctx
            ):
                return
            iterable = node.iter
            if _is_set_expr(iterable, ctx):
                yield self.finding(
                    ctx,
                    iterable,
                    "iterating a set: the order is not deterministic across "
                    "runs; wrap in sorted(...) or use an insertion-ordered "
                    "dict",
                )
        elif isinstance(node, ast.Call):
            if (
                ctx.resolve(node.func) in self._ORDERING_SINKS
                and node.args
                and _is_set_expr(node.args[0], ctx)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "materializing a set's iteration order; wrap in "
                    "sorted(...) before building ordered output",
                )


@register
class EnvironRead(Rule):
    """``os.environ`` reads outside the documented configuration seams.

    Environment variables are invisible inputs: two runs of the same
    command can differ without any change to spec or seed.  Only the
    cache module (``REPRO_CACHE_DIR`` / ``REPRO_NO_CACHE``), CLI entry
    points, and the opt-in runtime sanitizer switches may consult them;
    library code takes parameters.  Calls into project functions that
    transitively read the environment are flagged too.
    """

    id = "REP004"
    name = "environ-read"
    summary = "os.environ access outside sim/cache.py and CLI entry points"
    library_only = True
    default_allow = knowledge.ENV_SEAM_PATHS
    node_types = (ast.Attribute, ast.Name, ast.Call)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            chain = ctx.project_taints(node).get("env")
            if chain is not None:
                yield self.finding(
                    ctx,
                    node,
                    "call reaches an os.environ access outside the config "
                    f"seams ({chain_text(chain)}); pass explicit parameters "
                    "instead",
                )
            return
        if isinstance(node, ast.Name):
            if not isinstance(node.ctx, ast.Load):
                return
            qualname = ctx.from_imports.get(node.id)
        else:
            assert isinstance(node, ast.Attribute)
            qualname = ctx.resolve(node)
        if qualname in _ENV_READS:
            yield self.finding(
                ctx,
                node,
                f"{qualname} accessed outside the config seams "
                "(repro.sim.cache, __main__ entry points); pass explicit "
                "parameters instead",
            )
