"""Sharding rules: cross-shard traversal must be deterministically ordered.

The sharded deployment's equivalence contract (bit-reproducible runs,
pool == in-process) holds only if every loop over a *collection of
shards* visits them in the same order every run.  Lists indexed by shard
id are naturally ordered; the hazard is a dict or set keyed by shard id
whose insertion history varies (populated from routing results, worker
completion order, …) — iterating one bakes that history into handoff
application, budget rebalancing, or merged reports.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext
from repro.lint.findings import Finding
from repro.lint.registry import Rule, register

from repro.lint.rules.determinism import _is_set_expr

#: Dict-view accessors whose iteration order is the dict's insertion
#: history.
_DICT_VIEWS = ("keys", "values", "items")


def _terminal_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a name/attribute chain, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _names_shards(node: ast.AST) -> bool:
    """True when the expression's terminal identifier mentions shards."""
    name = _terminal_name(node)
    return name is not None and "shard" in name.lower()


def _is_dict_expr(node: ast.AST, ctx: FileContext, _depth: int = 0) -> bool:
    """True when ``node`` statically evaluates to a dict."""
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    if isinstance(node, ast.Call):
        return ctx.resolve(node.func) == "dict"
    if isinstance(node, ast.Name) and _depth < 4:
        value = ctx.local_value(node.id)
        if value is not None and value is not node:
            return _is_dict_expr(value, ctx, _depth + 1)
    return False


@register
class UnorderedShardIteration(Rule):
    """Iterating shard-keyed dicts/sets without an explicit order.

    Same contract as REP003, extended to dicts when the collection is
    keyed by shard: dict iteration is insertion-ordered, but the
    insertion order of a cross-shard map typically reflects *runtime
    history* (which shard produced results first, which stations routed
    where), so any ordered artifact built from it — handoff application,
    budget allocation, merged result sets — can differ between runs or
    between the pool and in-process paths.  Iterate ``range(n_shards)``
    or ``sorted(mapping)`` instead.
    """

    id = "REP031"
    name = "unordered-shard-iteration"
    summary = "iteration over a shard-keyed dict/set without sorting"
    node_types = (ast.For, ast.comprehension)

    def check(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        assert isinstance(node, (ast.For, ast.comprehension))
        iterable = node.iter
        # someshards.keys() / .values() / .items() — a dict view over a
        # shard-keyed mapping.
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in _DICT_VIEWS
            and not iterable.args
            and _names_shards(iterable.func.value)
        ):
            yield self.finding(
                ctx,
                iterable,
                f"iterating .{iterable.func.attr}() of a shard-keyed "
                "mapping: insertion order reflects runtime history, not "
                "shard order; iterate sorted(...) or range(n_shards)",
            )
            return
        # Bare shard-named dict/set iterated directly.
        if _names_shards(iterable) and (
            _is_dict_expr(iterable, ctx) or _is_set_expr(iterable, ctx)
        ):
            yield self.finding(
                ctx,
                iterable,
                "iterating a shard-keyed dict/set: the visit order is not "
                "the shard order; iterate sorted(...) or range(n_shards)",
            )
