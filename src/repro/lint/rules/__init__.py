"""Rule modules; importing this package registers every rule.

Rule families:

* ``determinism`` — REP001-REP004: seeded randomness, wall-clock reads,
  unordered iteration, environment reads.
* ``numeric`` — REP010-REP011: float equality, mutable defaults.
* ``invariants`` — REP020-REP021: the paper's Δ-bound/fairness clamping
  seam and the shedding-policy interface.
* ``pools`` — REP030: picklability of process-pool callables.
* ``sharding`` — REP031: ordered iteration over shard-keyed containers.
* ``async_rules`` — REP040-REP043: blocking calls on the event loop,
  unawaited coroutines, unobserved tasks, awaits under sync locks.
* ``shardpool`` — REP050-REP052: pool workers mutating globals,
  cross-module unordered shard reduction, unpicklable pool payloads.
* ``meta`` — REP000 (unused suppression), REP999 (parse failure).
"""

from repro.lint.rules import (  # noqa: F401 - imported for registration
    async_rules,
    determinism,
    invariants,
    meta,
    numeric,
    pools,
    sharding,
    shardpool,
)
