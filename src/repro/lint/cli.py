"""reprolint command line: ``python -m repro.lint [paths]``.

Exit codes: 0 — clean (warnings allowed); 1 — at least one
error-severity finding (including unused suppressions and parse
failures); 2 — usage error (unknown rule, missing path).

``--jobs N`` fans the summary and lint phases over a process pool
(``--jobs 0`` means one per CPU); ``--format sarif`` / ``--format
github`` emit SARIF 2.1.0 and GitHub Actions workflow commands for CI
annotation.  Per-function summaries are cached by content hash under
``--cache-dir`` (default ``.reprolint_cache``; ``--no-cache`` disables).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.config import LintConfig
from repro.lint.engine import run_paths
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules

#: SARIF 2.1.0 static-analysis interchange (one run, physical locations).
_SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _parse_rule_list(raw: str, known: frozenset[str]) -> frozenset[str]:
    rules = frozenset(part.strip() for part in raw.split(",") if part.strip())
    unknown = rules - known
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return rules


def sarif_report(
    findings: list[Finding], rules: list[type[Rule]]
) -> dict[str, object]:
    """The findings as a SARIF 2.1.0 log (dict, ready for json.dumps)."""
    return {
        "$schema": _SARIF_SCHEMA,
        "version": _SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "informationUri": "docs/lint_rules.md",
                        "rules": [
                            {
                                "id": rule.id,
                                "name": rule.name,
                                "shortDescription": {"text": rule.summary},
                            }
                            for rule in rules
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": f.rule_id,
                        "level": (
                            "error" if f.severity is Severity.ERROR else "warning"
                        ),
                        "message": {"text": f.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {"uri": f.path},
                                    "region": {
                                        "startLine": f.line,
                                        "startColumn": f.col,
                                    },
                                }
                            }
                        ],
                    }
                    for f in findings
                ],
            }
        ],
    }


def github_line(finding: Finding) -> str:
    """One GitHub Actions ``::error``/``::warning`` workflow command."""
    level = "error" if finding.severity is Severity.ERROR else "warning"
    # Workflow-command property values escape %, CR and LF.
    message = (
        finding.message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )
    return (
        f"::{level} file={finding.path},line={finding.line},"
        f"col={finding.col},title={finding.rule_id}::{message}"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: determinism- and invariant-aware static analysis "
            "for the LIRA reproduction (rule catalog: docs/lint_rules.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif", "github"),
        default="text",
        help="output format (default: text, one 'file:line:col RULE "
        "message' per finding; sarif = SARIF 2.1.0; github = workflow "
        "commands for Actions annotations)",
    )
    parser.add_argument(
        "--select", metavar="RULES", help="comma-separated rule ids to run exclusively"
    )
    parser.add_argument(
        "--ignore", metavar="RULES", help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the summary and lint phases "
        "(default: 1 = serial; 0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=".reprolint_cache",
        metavar="DIR",
        help="summary cache directory (default: .reprolint_cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-function summary cache",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    known = frozenset(rule.id for rule in rules)

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.name:28s} [{rule.severity.value}] {rule.summary}")
        return 0

    try:
        select = _parse_rule_list(args.select, known) if args.select else None
        ignore = (
            _parse_rule_list(args.ignore, known) if args.ignore else frozenset()
        )
    except argparse.ArgumentTypeError as exc:
        parser.error(str(exc))

    config = LintConfig(select=select, ignore=ignore)
    try:
        findings, files_checked = run_paths(
            list(args.paths),
            config=config,
            jobs=args.jobs,
            cache_dir=None if args.no_cache else args.cache_dir,
        )
    except FileNotFoundError as exc:
        parser.error(str(exc))

    errors = [f for f in findings if f.severity is Severity.ERROR]
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "findings": [f.to_dict() for f in findings],
                    "errors": len(errors),
                    "warnings": len(findings) - len(errors),
                },
                indent=2,
            )
        )
    elif args.format == "sarif":
        print(json.dumps(sarif_report(findings, rules), indent=2))
    elif args.format == "github":
        for finding in findings:
            print(github_line(finding))
        print(
            f"{len(findings)} finding(s): {len(errors)} error(s) in "
            f"{files_checked} file(s)",
            file=sys.stderr,
        )
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(
                f"{len(findings)} finding(s): {len(errors)} error(s), "
                f"{len(findings) - len(errors)} warning(s) in "
                f"{files_checked} file(s)",
                file=sys.stderr,
            )
    return 1 if errors else 0
