"""reprolint command line: ``python -m repro.lint [paths]``.

Exit codes: 0 — clean (warnings allowed); 1 — at least one
error-severity finding (including unused suppressions and parse
failures); 2 — usage error (unknown rule, missing path).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.lint.config import LintConfig
from repro.lint.engine import run_paths
from repro.lint.findings import Severity
from repro.lint.registry import all_rules


def _parse_rule_list(raw: str, known: frozenset[str]) -> frozenset[str]:
    rules = frozenset(part.strip() for part in raw.split(",") if part.strip())
    unknown = rules - known
    if unknown:
        raise argparse.ArgumentTypeError(
            f"unknown rule id(s): {', '.join(sorted(unknown))}"
        )
    return rules


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "reprolint: determinism- and invariant-aware static analysis "
            "for the LIRA reproduction (rule catalog: docs/lint_rules.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text, one 'file:line:col RULE "
        "message' per finding)",
    )
    parser.add_argument(
        "--select", metavar="RULES", help="comma-separated rule ids to run exclusively"
    )
    parser.add_argument(
        "--ignore", metavar="RULES", help="comma-separated rule ids to skip"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog and exit"
    )
    args = parser.parse_args(argv)

    rules = all_rules()
    known = frozenset(rule.id for rule in rules)

    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}  {rule.name:28s} [{rule.severity.value}] {rule.summary}")
        return 0

    try:
        select = _parse_rule_list(args.select, known) if args.select else None
        ignore = (
            _parse_rule_list(args.ignore, known) if args.ignore else frozenset()
        )
    except argparse.ArgumentTypeError as exc:
        parser.error(str(exc))

    config = LintConfig(select=select, ignore=ignore)
    try:
        findings, files_checked = run_paths(list(args.paths), config=config)
    except FileNotFoundError as exc:
        parser.error(str(exc))

    errors = [f for f in findings if f.severity is Severity.ERROR]
    if args.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "findings": [f.to_dict() for f in findings],
                    "errors": len(errors),
                    "warnings": len(findings) - len(errors),
                },
                indent=2,
            )
        )
    else:
        for finding in findings:
            print(finding.format())
        if findings:
            print(
                f"{len(findings)} finding(s): {len(errors)} error(s), "
                f"{len(findings) - len(errors)} warning(s) in "
                f"{files_checked} file(s)",
                file=sys.stderr,
            )
    return 1 if errors else 0
