"""Whole-program layer: module graph, taint closure, summary cache.

:class:`ProjectIndex` joins every file's :class:`ModuleSummary` into one
symbol table and computes the transitive closure of the effect taints
over the call graph.  The result answers, for any resolved callee name,
"does calling this (transitively) read the wall clock / draw unseeded
RNG / read the environment / block / mutate module state / iterate a
shard map unordered?" — with a witness chain for the finding message.

**Seam absorption** is what keeps the closure aligned with the repo's
contract: a function *defined in* an allowlisted seam file (the timing
harness for clocks, the cache/CLI modules for environment reads) may
perform the effect without tainting its callers — that is precisely
what a seam is for.  The seam patterns are shared with the direct
rules' allowlists via :mod:`repro.lint.knowledge`, so "clean because
routed through ``repro.timing``" means the same thing to both layers.

:class:`SummaryCache` persists summaries keyed by content hash (module
name and format version mixed in), so warm runs only re-summarize
files whose bytes changed.
"""

from __future__ import annotations

import json
from collections import deque
from fnmatch import fnmatch
from pathlib import Path
from typing import Iterable

from repro.lint import knowledge
from repro.lint.summaries import (
    SUMMARY_VERSION,
    FunctionSummary,
    ModuleSummary,
)

#: Per-taint seam path patterns: a function defined in a matching file
#: absorbs the taint instead of propagating it.
TAINT_SEAMS: dict[str, tuple[str, ...]] = {
    "clock": knowledge.CLOCK_SEAM_PATHS,
    "env": knowledge.ENV_SEAM_PATHS,
}

#: Longest witness chain kept (the interesting part is the first hops).
_MAX_CHAIN = 6


def chain_text(chain: tuple[str, ...]) -> str:
    """Render a witness chain for a finding message."""
    return " -> ".join(chain)


class ProjectIndex:
    """Symbol table + transitive effect taints over a set of modules."""

    def __init__(self, modules: Iterable[ModuleSummary]) -> None:
        self.modules: dict[str, ModuleSummary] = {}
        self.functions: dict[str, FunctionSummary] = {}
        self._path_of: dict[str, str] = {}
        self._module_of: dict[str, str] = {}
        for mod in modules:
            self.modules[mod.module] = mod
            for qualname, fn in mod.functions.items():
                self.functions[qualname] = fn
                self._path_of[qualname] = mod.path
                self._module_of[qualname] = mod.module
        self._taints = self._close()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------

    def lookup(self, module: str | None, name: str | None) -> str | None:
        """Canonical qualname of a resolved callee, if the project has it.

        Bare names (``helper``) and partially qualified ones
        (``Helper.run``) are tried against the calling module first;
        fully qualified names are looked up as-is.  A name matching no
        function is retried as a class constructor (``…​.__init__``).
        """
        if name is None:
            return None
        candidates = [name]
        if module is not None:
            candidates.append(f"{module}.{name}")
        for candidate in candidates:
            if candidate in self.functions:
                return candidate
        for candidate in candidates:
            init = f"{candidate}.__init__"
            if init in self.functions:
                return init
        return None

    def taints_of(self, module: str | None, name: str | None) -> dict[str, tuple[str, ...]]:
        """Taint → witness chain for a callee (empty when unknown/clean)."""
        qualname = self.lookup(module, name)
        if qualname is None:
            return {}
        return self._taints.get(qualname, {})

    def is_async_callable(self, module: str | None, name: str | None) -> bool:
        """True when the callee resolves to an ``async def`` in the project."""
        qualname = self.lookup(module, name)
        return qualname is not None and self.functions[qualname].is_async

    def defining_module(self, module: str | None, name: str | None) -> str | None:
        """Module a resolved callee is defined in (None when unknown)."""
        qualname = self.lookup(module, name)
        if qualname is None:
            return None
        return self._module_of[qualname]

    # ------------------------------------------------------------------
    # Closure
    # ------------------------------------------------------------------

    def _is_seam(self, qualname: str, taint: str) -> bool:
        patterns = TAINT_SEAMS.get(taint, ())
        if not patterns:
            return False
        path = self._path_of[qualname]
        return any(fnmatch(path, pat) for pat in patterns)

    def _close(self) -> dict[str, dict[str, tuple[str, ...]]]:
        callers: dict[str, list[tuple[str, bool]]] = {}
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            module = self._module_of[qualname]
            for callee in fn.calls:
                target = self.lookup(module, callee)
                if target is not None and target != qualname:
                    callers.setdefault(target, []).append((qualname, False))
            for callee in fn.executor_calls:
                target = self.lookup(module, callee)
                if target is not None and target != qualname:
                    callers.setdefault(target, []).append((qualname, True))

        taints: dict[str, dict[str, tuple[str, ...]]] = {}
        work: deque[tuple[str, str]] = deque()
        for qualname in sorted(self.functions):
            fn = self.functions[qualname]
            for taint in sorted(fn.direct):
                if self._is_seam(qualname, taint):
                    continue
                taints.setdefault(qualname, {})[taint] = (fn.direct[taint],)
                work.append((qualname, taint))
        while work:
            qualname, taint = work.popleft()
            chain = taints[qualname][taint]
            for caller, via_executor in sorted(callers.get(qualname, [])):
                # A blocking callable handed to a worker thread no
                # longer blocks the caller; every other effect (clock,
                # RNG, env, ...) still happens on the caller's behalf.
                if taint == "blocks" and via_executor:
                    continue
                if self._is_seam(caller, taint):
                    continue
                caller_taints = taints.setdefault(caller, {})
                if taint in caller_taints:
                    continue
                caller_taints[taint] = ((qualname,) + chain)[:_MAX_CHAIN]
                work.append((caller, taint))
        return taints


class SummaryCache:
    """Content-hash summary store under ``.reprolint_cache/``.

    One JSON file per (module, source-bytes, format-version) digest;
    a cold entry is simply recomputed, a corrupt one is ignored, so the
    cache can never change lint results — only skip work.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def _entry(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(self, digest: str) -> ModuleSummary | None:
        try:
            data = json.loads(self._entry(digest).read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if data.get("version") != SUMMARY_VERSION or data.get("digest") != digest:
            self.misses += 1
            return None
        try:
            summary = ModuleSummary.from_dict(data)
        except (KeyError, TypeError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return summary

    def put(self, summary: ModuleSummary) -> None:
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            entry = self._entry(summary.digest)
            tmp = entry.with_suffix(".tmp")
            tmp.write_text(json.dumps(summary.to_dict()), encoding="utf-8")
            tmp.replace(entry)
        except OSError:
            pass  # cache is best-effort; linting proceeds uncached
