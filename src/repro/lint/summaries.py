"""Per-function summaries: the whole-program layer's unit of knowledge.

One :class:`ModuleSummary` per file records, for every function and
method defined in it, the *effects the determinism contract cares
about* — wall-clock reads, unseeded/global RNG draws, environment
reads, blocking calls, module-global mutation, unordered shard
iteration — plus the resolved names of everything it calls.  The
project index (:mod:`repro.lint.project`) closes these summaries over
the call graph so a helper that reads the clock two hops away taints
every reachable call site.

Summaries are pure functions of the file's source (plus its module
name), which makes them safely cacheable by content hash — see
:class:`repro.lint.project.SummaryCache`.

The effect detectors here mirror the direct rules (REP001/REP002/
REP004, REP031, the REP040 blocking set) byte for byte via the shared
sets in :mod:`repro.lint.knowledge`: a function the summarizer marks
``clock`` is exactly a function REP002 would flag at its definition.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint import knowledge

#: Bump when the summary format or detectors change: invalidates every
#: cached entry (the digest mixes this in).
SUMMARY_VERSION = 1

#: The effect kinds a summary can carry.
TAINTS = ("clock", "rng", "env", "blocks", "global_mutation", "shard_iter")

_MUTATING_METHODS = frozenset({
    "append", "extend", "add", "update", "setdefault", "pop", "popitem",
    "clear", "remove", "discard", "insert", "appendleft", "extendleft",
})

_DICT_VIEWS = ("keys", "values", "items")


def module_name_for(path: str | Path) -> str:
    """Dotted module name for a source path.

    Real files walk up through ``__init__.py`` packages; paths that do
    not exist on disk (unit-test snippets linted under a display path)
    fall back to the textual layout convention: everything after a
    ``src`` component, else the bare stem.
    """
    p = Path(path)
    if p.exists():
        parts = [p.stem] if p.stem != "__init__" else []
        parent = p.parent
        while (parent / "__init__.py").exists():
            parts.insert(0, parent.name)
            parent = parent.parent
        if parts:
            return ".".join(parts)
        return p.stem
    posix = PurePosixPath(p.as_posix())
    parts = list(posix.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else str(posix.stem)


def source_digest(module: str, source: str) -> str:
    """Content hash keying the summary cache (format-versioned)."""
    h = hashlib.sha256()
    h.update(f"{SUMMARY_VERSION}\x00{module}\x00".encode())
    h.update(source.encode("utf-8", errors="surrogateescape"))
    return h.hexdigest()


class ImportResolver:
    """Alias-unfolding name resolution over one module's imports."""

    def __init__(self, tree: ast.Module) -> None:
        self.imports: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``."""
        if isinstance(node, ast.Name):
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            if node.id in self.imports:
                return self.imports[node.id]
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


@dataclass(frozen=True)
class FunctionSummary:
    """What one function does, as far as the contract is concerned.

    ``direct`` maps a taint kind to the primitive that introduced it
    (``"clock" -> "time.monotonic"``) — the witness shown in findings.
    ``calls`` holds resolved callee names (module-local bare names are
    qualified by the project index at closure time); ``executor_calls``
    holds callables *referenced* inside a thread/executor seam, which
    propagate every taint except ``blocks``.
    """

    qualname: str
    line: int
    is_async: bool
    direct: dict[str, str] = field(default_factory=dict)
    calls: tuple[str, ...] = ()
    executor_calls: tuple[str, ...] = ()

    def to_dict(self) -> dict[str, object]:
        return {
            "qualname": self.qualname,
            "line": self.line,
            "is_async": self.is_async,
            "direct": dict(self.direct),
            "calls": list(self.calls),
            "executor_calls": list(self.executor_calls),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FunctionSummary":
        return cls(
            qualname=str(data["qualname"]),
            line=int(data["line"]),
            is_async=bool(data["is_async"]),
            direct={str(k): str(v) for k, v in dict(data["direct"]).items()},
            calls=tuple(data["calls"]),
            executor_calls=tuple(data["executor_calls"]),
        )


@dataclass(frozen=True)
class ModuleSummary:
    """Every function summary of one file, plus its identity."""

    module: str
    path: str
    digest: str
    functions: dict[str, FunctionSummary] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "version": SUMMARY_VERSION,
            "module": self.module,
            "path": self.path,
            "digest": self.digest,
            "functions": {
                name: fn.to_dict() for name, fn in sorted(self.functions.items())
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=str(data["module"]),
            path=str(data["path"]),
            digest=str(data["digest"]),
            functions={
                str(name): FunctionSummary.from_dict(fn)
                for name, fn in dict(data["functions"]).items()
            },
        )


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound by simple assignments in the module body."""
    names: set[str] = set()
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
            if isinstance(stmt.target, ast.Name):
                names.add(stmt.target.id)
    return names


def _names_shards(node: ast.AST) -> bool:
    """True when the expression's terminal identifier mentions shards."""
    if isinstance(node, ast.Name):
        return "shard" in node.id.lower()
    if isinstance(node, ast.Attribute):
        return "shard" in node.attr.lower()
    return False


class _FunctionSummarizer(ast.NodeVisitor):
    """One pass over one function body collecting taints and calls."""

    def __init__(
        self,
        module: str,
        cls_name: str | None,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
        resolver: ImportResolver,
        module_names: set[str],
    ) -> None:
        self.module = module
        self.cls_name = cls_name
        self.fn = fn
        self.resolver = resolver
        self.module_names = module_names
        self.direct: dict[str, str] = {}
        self.calls: set[str] = set()
        self.executor_calls: set[str] = set()
        self.globals_declared: set[str] = set()
        self.locals: set[str] = self._parameter_names(fn)
        #: Last simple ``name = expr`` binding seen (linear approximation
        #: of the scope map — enough for the shard-dict pattern).
        self.assignments: dict[str, ast.expr] = {}

    @staticmethod
    def _parameter_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        args = fn.args
        names = {a.arg for a in args.posonlyargs + args.args + args.kwonlyargs}
        if args.vararg:
            names.add(args.vararg.arg)
        if args.kwarg:
            names.add(args.kwarg.arg)
        return names

    def taint(self, kind: str, witness: str) -> None:
        self.direct.setdefault(kind, witness)

    def run(self) -> FunctionSummary:
        for stmt in self.fn.body:
            self.visit(stmt)
        return FunctionSummary(
            qualname=(
                f"{self.module}.{self.cls_name}.{self.fn.name}"
                if self.cls_name
                else f"{self.module}.{self.fn.name}"
            ),
            line=self.fn.lineno,
            is_async=isinstance(self.fn, ast.AsyncFunctionDef),
            direct=self.direct,
            calls=tuple(sorted(self.calls)),
            executor_calls=tuple(sorted(self.executor_calls)),
        )

    # -- name resolution ------------------------------------------------

    def _resolve_callee(self, func: ast.AST) -> str | None:
        """Callee name, folding ``self.x()`` into the enclosing class."""
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
            and self.cls_name is not None
        ):
            return f"{self.module}.{self.cls_name}.{func.attr}"
        return self.resolver.resolve(func)

    # -- visitors -------------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.globals_declared.update(node.names)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_store(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_store(node.target, node.value)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._record_store(node.target, node.value)
        self.generic_visit(node)

    def _record_store(self, target: ast.AST, value: ast.expr) -> None:
        if isinstance(target, ast.Name):
            if target.id in self.globals_declared:
                # Rebinding without ``global`` would just shadow locally;
                # with it, the module's state changes under every caller.
                self.taint("global_mutation", f"global {target.id}")
            else:
                self.locals.add(target.id)
                self.assignments[target.id] = value
        elif isinstance(target, ast.Subscript) and isinstance(target.value, ast.Name):
            name = target.value.id
            if name not in self.locals and (
                name in self.module_names or name in self.globals_declared
            ):
                self.taint("global_mutation", f"{name}[...]")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_store(element, value)

    def visit_For(self, node: ast.For) -> None:
        self._record_store(node.target, node.iter)
        self._check_shard_iteration(node.iter)
        self.generic_visit(node)

    def generic_visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.comprehension):
            self._check_shard_iteration(node.iter)
        super().generic_visit(node)

    def _is_dict_or_set_expr(self, node: ast.AST, depth: int = 0) -> bool:
        if isinstance(node, (ast.Dict, ast.DictComp, ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return self.resolver.resolve(node.func) in ("dict", "set", "frozenset")
        if isinstance(node, ast.Name) and depth < 4:
            value = self.assignments.get(node.id)
            if value is not None and value is not node:
                return self._is_dict_or_set_expr(value, depth + 1)
        return False

    def _check_shard_iteration(self, iterable: ast.expr) -> None:
        if (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Attribute)
            and iterable.func.attr in _DICT_VIEWS
            and not iterable.args
            and _names_shards(iterable.func.value)
        ):
            self.taint(
                "shard_iter", f".{iterable.func.attr}() of a shard-keyed mapping"
            )
        elif _names_shards(iterable) and self._is_dict_or_set_expr(iterable):
            self.taint("shard_iter", "a shard-keyed dict/set")

    def visit_Attribute(self, node: ast.Attribute) -> None:
        qualname = self.resolver.resolve(node)
        if qualname in knowledge.CLOCK_READS:
            self.taint("clock", qualname)
        elif qualname in knowledge.ENV_READS:
            self.taint("env", qualname)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            qualname = self.resolver.from_imports.get(node.id)
            if qualname in knowledge.CLOCK_READS:
                self.taint("clock", qualname)
            elif qualname in knowledge.ENV_READS:
                self.taint("env", qualname)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        qualname = self._resolve_callee(func)
        if qualname is not None:
            self._check_rng(node, qualname)
            if qualname in knowledge.BLOCKING_CALLS:
                self.taint("blocks", qualname)
            if qualname in knowledge.EXECUTOR_SEAMS or (
                isinstance(func, ast.Attribute) and func.attr == "run_in_executor"
            ):
                self._record_executor_args(node)
            else:
                self.calls.add(qualname)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_METHODS
            and isinstance(func.value, ast.Name)
        ):
            name = func.value.id
            if name not in self.locals and name in self.module_names:
                self.taint("global_mutation", f"{name}.{func.attr}(...)")
        self.generic_visit(node)

    def _record_executor_args(self, node: ast.Call) -> None:
        """Callables deferred through to_thread/run_in_executor."""
        for arg in node.args:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                callee = self._resolve_callee(arg)
                if callee is not None:
                    self.executor_calls.add(callee)

    def _check_rng(self, node: ast.Call, qualname: str) -> None:
        if qualname in knowledge.RNG_CONSTRUCTORS:
            seeded = bool(node.args or node.keywords)
            if node.args and isinstance(node.args[0], ast.Constant):
                seeded = node.args[0].value is not None
            if not seeded:
                self.taint("rng", qualname)
            return
        prefix, _, tail = qualname.rpartition(".")
        if prefix == "numpy.random" and tail in knowledge.NP_LEGACY_GLOBAL_FNS:
            self.taint("rng", qualname)
        elif (
            prefix == "random"
            and tail in knowledge.STDLIB_RANDOM_FNS
            and self.resolver.imports.get("random") == "random"
        ):
            self.taint("rng", qualname)

    #: Nested function/class definitions are folded into the parent
    #: summary (their effects run when the parent calls them; treating
    #: them separately would need closure-call resolution for little
    #: gain), so the default generic_visit recursion is exactly right.


def summarize_module(
    path: str | Path,
    source: str,
    tree: ast.Module | None = None,
    module: str | None = None,
) -> ModuleSummary:
    """Build the summary of one file (parses ``source`` unless given)."""
    if module is None:
        module = module_name_for(path)
    digest = source_digest(module, source)
    posix = PurePosixPath(Path(path).as_posix()).as_posix()
    if tree is None:
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            return ModuleSummary(module=module, path=posix, digest=digest)
    resolver = ImportResolver(tree)
    module_names = _module_level_names(tree)
    functions: dict[str, FunctionSummary] = {}

    def add(fn: ast.FunctionDef | ast.AsyncFunctionDef, cls: str | None) -> None:
        summary = _FunctionSummarizer(module, cls, fn, resolver, module_names).run()
        functions[summary.qualname] = summary

    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            add(stmt, None)
        elif isinstance(stmt, ast.ClassDef):
            for item in stmt.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    add(item, stmt.name)
    return ModuleSummary(
        module=module, path=posix, digest=digest, functions=functions
    )
