"""Domain knowledge shared by the rules and the summary builder.

The per-file rules (:mod:`repro.lint.rules`) and the whole-program
summarizer (:mod:`repro.lint.summaries`) must agree on what counts as
a wall-clock read, an unseeded RNG, a blocking call, and so on — a
helper flagged by the summarizer is exactly a helper the direct rules
would flag at its definition.  Centralizing the sets here keeps the
two layers from drifting.

This module imports nothing from the rest of the linter so both the
engine and the rule modules can depend on it freely.
"""

from __future__ import annotations

#: numpy legacy global-state API: order-sensitive process-wide state.
NP_LEGACY_GLOBAL_FNS = frozenset({
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "bytes", "shuffle", "permutation", "uniform",
    "normal", "standard_normal", "beta", "binomial", "poisson",
    "exponential", "gamma", "rayleigh", "vonmises", "lognormal",
    "geometric", "hypergeometric", "laplace", "logistic", "multinomial",
    "multivariate_normal", "pareto", "power", "triangular", "wald",
    "weibull", "zipf",
})

#: stdlib ``random`` module-level functions (hidden shared Random()).
STDLIB_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "betavariate", "expovariate",
    "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "vonmisesvariate", "paretovariate", "weibullvariate", "seed",
    "getrandbits", "randbytes",
})

#: RNG constructors that must receive an explicit seed.
RNG_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "random.Random",
})

#: Wall-clock reads (flagged as attribute/name references, so both
#: ``time.time()`` calls and ``timer=time.time`` aliases are caught).
CLOCK_READS = frozenset({
    "time.time", "time.time_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.process_time", "time.process_time_ns",
    "time.clock_gettime", "time.clock_gettime_ns",
    "datetime.datetime.now", "datetime.datetime.today",
    "datetime.datetime.utcnow", "datetime.date.today",
})

#: Environment reads outside the documented configuration seams.
ENV_READS = frozenset({"os.environ", "os.getenv", "os.environb"})

#: Synchronous calls that block the calling thread (and therefore the
#: event loop when issued from a coroutine): sleeps, process spawns,
#: socket setup, and file I/O.  Methods on socket/file *instances*
#: cannot be resolved statically and are not listed; the interprocedural
#: ``blocks`` taint catches helpers wrapping them when the constructor
#: or opener appears in the same closure.
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.create_connection", "socket.getaddrinfo", "socket.gethostbyname",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen",
    "open", "io.open",
})

#: Pool/executor constructors whose workers live in other processes.
POOL_CONSTRUCTORS = frozenset({
    "ProcessPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
    "Pool",
    "multiprocessing.Pool",
    "multiprocessing.pool.Pool",
})

#: Pool methods that ship their first positional argument to workers.
POOL_METHODS = frozenset({
    "map", "submit", "imap", "imap_unordered", "apply", "apply_async",
    "starmap", "starmap_async", "map_async",
})

#: Well-known awaitable-returning stdlib callables (a bare-statement
#: call to one of these is a lost coroutine/future).
KNOWN_COROUTINE_FNS = frozenset({
    "asyncio.sleep", "asyncio.gather", "asyncio.wait", "asyncio.wait_for",
    "asyncio.to_thread", "asyncio.open_connection", "asyncio.open_unix_connection",
    "asyncio.start_server", "asyncio.start_unix_server",
})

#: Seams that defer a callable to a worker thread/executor: a blocking
#: callable *referenced* (not called) inside one of these is handled.
EXECUTOR_SEAMS = frozenset({"asyncio.to_thread", "run_in_executor"})

#: The one file allowed to read the wall clock (REP002 allowlist and
#: the ``clock`` taint's absorption seam — callers of its functions are
#: clean by definition).
CLOCK_SEAM_PATHS = ("*/repro/timing.py", "repro/timing.py")

#: Files allowed to read the environment (REP004 allowlist and the
#: ``env`` taint seam): the cache configuration module, CLI entry
#: points, and the opt-in runtime sanitizer switches.
ENV_SEAM_PATHS = (
    "*/repro/sim/cache.py",
    "*/__main__.py",
    "*/repro/sanitize/*",
    "repro/sanitize/*",
)

#: Synchronous lock constructors (await-while-held hazard, REP043).
SYNC_LOCK_CONSTRUCTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
})
