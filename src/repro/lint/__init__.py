"""reprolint: determinism- and invariant-aware static analysis.

An AST-based lint pass encoding this repository's correctness contract:
bit-identical results from identical ``(spec, seed)`` pairs, the
paper's Δ-bound/fairness invariants, and picklability across the
process-pool seam.  Run as ``python -m repro.lint [paths]``; the rule
catalog lives in ``docs/lint_rules.md``.

Programmatic use::

    from repro.lint import LintConfig, lint_source, run_paths

    findings = lint_source(code, path="src/repro/example.py")
    findings, n_files = run_paths(["src"], LintConfig())
"""

from repro.lint.config import LintConfig, RuleConfig
from repro.lint.engine import lint_file, lint_source, run_paths
from repro.lint.findings import Finding, Severity
from repro.lint.registry import REGISTRY, Rule, all_rules, register

__all__ = [
    "Finding",
    "LintConfig",
    "REGISTRY",
    "Rule",
    "RuleConfig",
    "Severity",
    "all_rules",
    "lint_file",
    "lint_source",
    "register",
    "run_paths",
]
