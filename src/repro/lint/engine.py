"""The reprolint engine: one shared AST walk per file.

Every file is parsed once and walked once; each node is dispatched to
the rules registered for that node's type (see
:class:`repro.lint.registry.Rule`).  The walk maintains an ancestor
stack so rules can ask about their enclosing scope, and the
:class:`FileContext` centralizes the cross-rule machinery — import
resolution, per-scope assignment maps, suppression handling — so rules
stay small and declarative.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path, PurePosixPath

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.registry import Rule, all_rules
from repro.lint.suppress import SuppressionIndex

#: Node types that open a new assignment scope.
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module)


@dataclass
class ScopeInfo:
    """Simple dataflow facts about one function (or module) body.

    ``assignments`` maps a name to the value expression of its last
    simple ``name = expr`` / ``with expr as name`` binding in the scope;
    ``nested_functions`` holds the names of functions defined locally
    (closures — unpicklable, hence interesting to REP030).
    """

    assignments: dict[str, ast.expr] = field(default_factory=dict)
    nested_functions: set[str] = field(default_factory=set)


class FileContext:
    """Everything rules may need to know about the file being linted."""

    def __init__(self, path: str, source: str, tree: ast.Module, config: LintConfig):
        self.display_path = path
        self.posix_path = PurePosixPath(Path(path).as_posix()).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        #: Ancestor chain of the node currently being visited (outermost
        #: first; does not include the node itself).
        self.stack: list[ast.AST] = []
        self.imports: dict[str, str] = {}
        self.from_imports: dict[str, str] = {}
        self._collect_imports(tree)
        self._scopes: dict[ast.AST, ScopeInfo] = {}

    # ------------------------------------------------------------------
    # Path classification
    # ------------------------------------------------------------------

    @property
    def is_library(self) -> bool:
        """True when the file is library code (``src/repro/`` by default)."""
        return any(fnmatch(self.posix_path, pat) for pat in self.config.library_globs)

    def matches(self, patterns: tuple[str, ...]) -> bool:
        return any(fnmatch(self.posix_path, pat) for pat in patterns)

    # ------------------------------------------------------------------
    # Import-aware name resolution
    # ------------------------------------------------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.imports[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        Aliases are unfolded through the file's imports, so
        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` regardless of import spelling.
        """
        if isinstance(node, ast.Name):
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            if node.id in self.imports:
                return self.imports[node.id]
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------

    def enclosing_scope(self) -> ast.AST:
        """Innermost function (or the module) containing the current node."""
        for node in reversed(self.stack):
            if isinstance(node, _SCOPE_TYPES):
                return node
        return self.tree

    def scope_info(self, scope: ast.AST) -> ScopeInfo:
        """Assignment/closure facts for ``scope`` (computed once, cached)."""
        info = self._scopes.get(scope)
        if info is None:
            info = ScopeInfo()
            body = getattr(scope, "body", [])
            if isinstance(body, ast.expr):  # Lambda body is an expression
                body = []
            self._collect_scope(body, info)
            self._scopes[scope] = info
        return info

    def _collect_scope(self, statements: list[ast.stmt], info: ScopeInfo) -> None:
        """Walk a statement list without descending into nested scopes."""
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.nested_functions.add(stmt.name)
                continue  # bindings inside a nested function are its own
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    info.assignments[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    info.assignments[stmt.target.id] = stmt.value
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        info.assignments[item.optional_vars.id] = item.context_expr
            for child_body in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, child_body, None)
                if not children:
                    continue
                for child in children:
                    if isinstance(child, ast.excepthandler):
                        self._collect_scope(child.body, info)
                if all(isinstance(c, ast.stmt) for c in children):
                    self._collect_scope(list(children), info)

    def local_value(self, name: str) -> ast.expr | None:
        """The expression last assigned to ``name`` in the enclosing scope."""
        return self.scope_info(self.enclosing_scope()).assignments.get(name)


class _Walker:
    """Single-pass dispatcher: one tree traversal feeds every rule."""

    def __init__(self, ctx: FileContext, rules: list[Rule]) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self.dispatch.setdefault(node_type, []).append(rule)

    def walk(self, node: ast.AST) -> None:
        for rule in self.dispatch.get(type(node), ()):
            self.findings.extend(rule.check(node, self.ctx))
        self.ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        self.ctx.stack.pop()


def _applicable_rules(ctx: FileContext, config: LintConfig) -> list[Rule]:
    rules: list[Rule] = []
    for cls in all_rules():
        if not cls.node_types or not config.is_enabled(cls.id):
            continue
        if cls.library_only and not ctx.is_library:
            continue
        allow = cls.default_allow + config.rule_config(cls.id).allow
        if allow and ctx.matches(allow):
            continue
        rules.append(cls())
    return rules


def lint_source(
    source: str, path: str = "<string>", config: LintConfig | None = None
) -> list[Finding]:
    """Lint one unit of Python source; returns findings sorted by position."""
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                rule_id="REP999",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext(path=path, source=source, tree=tree, config=config)
    walker = _Walker(ctx, _applicable_rules(ctx, config))
    walker.walk(tree)

    suppressions = SuppressionIndex.from_source(source)
    findings = suppressions.filter(walker.findings)
    if config.is_enabled("REP000"):
        findings.extend(
            suppressions.unused(
                path, config.severity_for("REP000", Severity.ERROR)
            )
        )
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule_id))


def lint_file(path: str | Path, config: LintConfig | None = None) -> list[Finding]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=str(path), config=config)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted, deduplicated file list."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" or path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(out))


def run_paths(
    paths: list[str | Path], config: LintConfig | None = None
) -> tuple[list[Finding], int]:
    """Lint files/directories; returns ``(findings, files_checked)``."""
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for file in files:
        findings.extend(lint_file(file, config=config))
    return findings, len(files)
