"""The reprolint engine: a project pass feeding one shared walk per file.

Linting now runs in two phases.  **Phase 1** parses every file and
builds (or loads from the content-hash cache) its per-function effect
summary; the summaries join into a :class:`~repro.lint.project.ProjectIndex`
whose taint closure makes rules *interprocedural* — a helper that reads
the wall clock taints every call site reachable from it, across
modules.  **Phase 2** walks each file once, dispatching every node to
the rules registered for that node's type (see
:class:`repro.lint.registry.Rule`) with the project index available as
``ctx.project``.

Both phases fan out over a ``ProcessPoolExecutor`` when ``jobs > 1``
(same profitability fallback as the experiment sweep engine); results
are position-sorted per file, so parallel runs are bit-identical to
serial ones.

The walk maintains an ancestor stack so rules can ask about their
enclosing scope, and the :class:`FileContext` centralizes the
cross-rule machinery — import resolution, per-scope assignment maps,
suppression handling — so rules stay small and declarative.
"""

from __future__ import annotations

import ast
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path, PurePosixPath

from repro.lint.config import LintConfig
from repro.lint.findings import Finding, Severity
from repro.lint.project import ProjectIndex, SummaryCache
from repro.lint.registry import Rule, all_rules
from repro.lint.summaries import (
    ImportResolver,
    ModuleSummary,
    module_name_for,
    source_digest,
    summarize_module,
)
from repro.lint.suppress import SuppressionIndex
from repro.parallel import default_jobs, pool_is_profitable

#: Node types that open a new assignment scope.
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module)


@dataclass
class ScopeInfo:
    """Simple dataflow facts about one function (or module) body.

    ``assignments`` maps a name to the value expression of its last
    simple ``name = expr`` / ``with expr as name`` binding in the scope;
    ``nested_functions`` holds the names of functions defined locally
    (closures — unpicklable, hence interesting to REP030).
    """

    assignments: dict[str, ast.expr] = field(default_factory=dict)
    nested_functions: set[str] = field(default_factory=set)


class FileContext:
    """Everything rules may need to know about the file being linted."""

    def __init__(
        self,
        path: str,
        source: str,
        tree: ast.Module,
        config: LintConfig,
        project: ProjectIndex | None = None,
        module_name: str | None = None,
    ):
        self.display_path = path
        self.posix_path = PurePosixPath(Path(path).as_posix()).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.config = config
        #: Whole-program index (None only for bare snippet linting);
        #: gives rules transitive effect taints and async-ness of
        #: resolved callees.
        self.project = project
        #: Dotted module name of this file within the project.
        self.module_name = (
            module_name if module_name is not None else module_name_for(path)
        )
        #: Ancestor chain of the node currently being visited (outermost
        #: first; does not include the node itself).
        self.stack: list[ast.AST] = []
        self._resolver = ImportResolver(tree)
        self.imports = self._resolver.imports
        self.from_imports = self._resolver.from_imports
        self._scopes: dict[ast.AST, ScopeInfo] = {}

    # ------------------------------------------------------------------
    # Path classification
    # ------------------------------------------------------------------

    @property
    def is_library(self) -> bool:
        """True when the file is library code (``src/repro/`` by default)."""
        return any(fnmatch(self.posix_path, pat) for pat in self.config.library_globs)

    def matches(self, patterns: tuple[str, ...]) -> bool:
        return any(fnmatch(self.posix_path, pat) for pat in patterns)

    # ------------------------------------------------------------------
    # Import-aware name resolution
    # ------------------------------------------------------------------

    def resolve(self, node: ast.AST) -> str | None:
        """Canonical dotted name of a Name/Attribute chain, or ``None``.

        Aliases are unfolded through the file's imports, so
        ``np.random.default_rng`` resolves to
        ``numpy.random.default_rng`` regardless of import spelling.
        """
        return self._resolver.resolve(node)

    def resolve_call(self, node: ast.Call) -> str | None:
        """The callee's resolved name, folding ``self.x()`` methods.

        ``self.helper()`` inside ``class C`` resolves to
        ``<module>.C.helper`` so the project index can look it up; every
        other shape defers to :meth:`resolve`.
        """
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self"
        ):
            for ancestor in reversed(self.stack):
                if isinstance(ancestor, ast.ClassDef):
                    return f"{self.module_name}.{ancestor.name}.{func.attr}"
        return self.resolve(func)

    def project_taints(self, node: ast.Call) -> dict[str, tuple[str, ...]]:
        """Transitive effect taints of the called project function.

        Witness chains are rooted at the resolved callee so the finding
        message names the function being called, not just what it
        eventually reaches.
        """
        if self.project is None:
            return {}
        name = self.resolve_call(node)
        qualname = self.project.lookup(self.module_name, name)
        if qualname is None:
            return {}
        taints = self.project.taints_of(self.module_name, name)
        return {t: (qualname,) + chain for t, chain in taints.items()}

    # ------------------------------------------------------------------
    # Scope helpers
    # ------------------------------------------------------------------

    def enclosing_scope(self) -> ast.AST:
        """Innermost function (or the module) containing the current node."""
        for node in reversed(self.stack):
            if isinstance(node, _SCOPE_TYPES):
                return node
        return self.tree

    def enclosing_function(self) -> ast.AST | None:
        """Innermost function containing the current node, if any."""
        for node in reversed(self.stack):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return node
        return None

    def scope_info(self, scope: ast.AST) -> ScopeInfo:
        """Assignment/closure facts for ``scope`` (computed once, cached)."""
        info = self._scopes.get(scope)
        if info is None:
            info = ScopeInfo()
            body = getattr(scope, "body", [])
            if isinstance(body, ast.expr):  # Lambda body is an expression
                body = []
            self._collect_scope(body, info)
            self._scopes[scope] = info
        return info

    def _collect_scope(self, statements: list[ast.stmt], info: ScopeInfo) -> None:
        """Walk a statement list without descending into nested scopes."""
        for stmt in statements:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.nested_functions.add(stmt.name)
                continue  # bindings inside a nested function are its own
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    info.assignments[target.id] = stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name):
                    info.assignments[stmt.target.id] = stmt.value
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    if isinstance(item.optional_vars, ast.Name):
                        info.assignments[item.optional_vars.id] = item.context_expr
            for child_body in ("body", "orelse", "finalbody", "handlers"):
                children = getattr(stmt, child_body, None)
                if not children:
                    continue
                for child in children:
                    if isinstance(child, ast.excepthandler):
                        self._collect_scope(child.body, info)
                if all(isinstance(c, ast.stmt) for c in children):
                    self._collect_scope(list(children), info)

    def local_value(self, name: str) -> ast.expr | None:
        """The expression last assigned to ``name`` in the enclosing scope."""
        return self.scope_info(self.enclosing_scope()).assignments.get(name)


class _Walker:
    """Single-pass dispatcher: one tree traversal feeds every rule."""

    def __init__(self, ctx: FileContext, rules: list[Rule]) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.dispatch: dict[type[ast.AST], list[Rule]] = {}
        for rule in rules:
            for node_type in rule.node_types:
                self.dispatch.setdefault(node_type, []).append(rule)

    def walk(self, node: ast.AST) -> None:
        for rule in self.dispatch.get(type(node), ()):
            self.findings.extend(rule.check(node, self.ctx))
        self.ctx.stack.append(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child)
        self.ctx.stack.pop()


def _applicable_rules(ctx: FileContext, config: LintConfig) -> list[Rule]:
    rules: list[Rule] = []
    for cls in all_rules():
        if not cls.node_types or not config.is_enabled(cls.id):
            continue
        if cls.library_only and not ctx.is_library:
            continue
        allow = cls.default_allow + config.rule_config(cls.id).allow
        if allow and ctx.matches(allow):
            continue
        rules.append(cls())
    return rules


def _parse_failure(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        rule_id="REP999",
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 0) + 1,
        message=f"file does not parse: {exc.msg}",
    )


def lint_source(
    source: str,
    path: str = "<string>",
    config: LintConfig | None = None,
    project: ProjectIndex | None = None,
) -> list[Finding]:
    """Lint one unit of Python source; returns findings sorted by position.

    Without an explicit ``project``, a single-file index is built from
    the source itself, so intra-file interprocedural findings (a local
    helper reading the clock, flagged at its call sites) work even for
    bare snippets.
    """
    config = config or LintConfig()
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [_parse_failure(path, exc)]
    if project is None:
        project = ProjectIndex([summarize_module(path, source, tree=tree)])
    return _lint_tree(path, source, tree, config, project)


def _lint_tree(
    path: str,
    source: str,
    tree: ast.Module,
    config: LintConfig,
    project: ProjectIndex | None,
) -> list[Finding]:
    ctx = FileContext(
        path=path, source=source, tree=tree, config=config, project=project
    )
    walker = _Walker(ctx, _applicable_rules(ctx, config))
    walker.walk(tree)

    suppressions = SuppressionIndex.from_source(source)
    findings = suppressions.filter(walker.findings)
    if config.is_enabled("REP000"):
        findings.extend(
            suppressions.unused(path, config.severity_for("REP000", Severity.ERROR))
        )
    return sorted(findings, key=lambda f: (f.line, f.col, f.rule_id))


def lint_file(
    path: str | Path,
    config: LintConfig | None = None,
    project: ProjectIndex | None = None,
) -> list[Finding]:
    """Lint one file on disk."""
    text = Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=str(path), config=config, project=project)


def iter_python_files(paths: list[str | Path]) -> list[Path]:
    """Expand files and directories into a sorted, deduplicated file list."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py" or path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return sorted(dict.fromkeys(out))


# ----------------------------------------------------------------------
# Project runs (phase 1: summaries; phase 2: per-file rule walks)
# ----------------------------------------------------------------------

def _summarize_one(args: tuple[str, str]) -> ModuleSummary:
    """Pool worker: summarize one file from its source text."""
    path, source = args
    return summarize_module(path, source)


#: Per-worker state for phase-2 pool execution, set by the initializer
#: (the sanctioned worker-global pattern: each process gets its own copy).
_WORKER_PROJECT: ProjectIndex | None = None
_WORKER_CONFIG: LintConfig | None = None


def _lint_worker_init(modules: list[ModuleSummary], config: LintConfig) -> None:
    global _WORKER_PROJECT, _WORKER_CONFIG
    _WORKER_PROJECT = ProjectIndex(modules)
    _WORKER_CONFIG = config


def _lint_one(path: str) -> list[Finding]:
    """Pool worker: re-read and lint one file against the shared index."""
    assert _WORKER_CONFIG is not None
    try:
        source = Path(path).read_text(encoding="utf-8")
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [_parse_failure(path, exc)]
    return _lint_tree(path, source, tree, _WORKER_CONFIG, _WORKER_PROJECT)


def build_project(
    sources: list[tuple[str, str]],
    cache: SummaryCache | None = None,
    jobs: int = 1,
) -> ProjectIndex:
    """Phase 1: summaries for every (path, source), cached and parallel."""
    summaries: dict[str, ModuleSummary | None] = {}
    missing: list[tuple[str, str]] = []
    for path, source in sources:
        if cache is not None:
            digest = source_digest(module_name_for(path), source)
            summaries[path] = cache.get(digest)
            if summaries[path] is None:
                missing.append((path, source))
        else:
            summaries[path] = None
            missing.append((path, source))
    if missing:
        if pool_is_profitable(jobs, len(missing)):
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                computed = list(pool.map(_summarize_one, missing))
        else:
            computed = [_summarize_one(item) for item in missing]
        for (path, _), summary in zip(missing, computed):
            summaries[path] = summary
            if cache is not None:
                cache.put(summary)
    return ProjectIndex([s for s in summaries.values() if s is not None])


def run_paths(
    paths: list[str | Path],
    config: LintConfig | None = None,
    jobs: int | None = None,
    cache_dir: str | Path | None = None,
) -> tuple[list[Finding], int]:
    """Lint files/directories as one project; ``(findings, files_checked)``.

    ``jobs > 1`` fans both phases over a process pool (with the shared
    single-core/single-job fallback); ``cache_dir`` enables the
    content-hash summary cache.  Findings are identical across all
    (jobs, cache) combinations.
    """
    config = config or LintConfig()
    files = iter_python_files(paths)
    if jobs is None:
        jobs = 1
    elif jobs <= 0:
        jobs = default_jobs()
    cache = SummaryCache(cache_dir) if cache_dir is not None else None

    sources: list[tuple[str, str]] = [
        (str(file), file.read_text(encoding="utf-8")) for file in files
    ]
    project = build_project(sources, cache=cache, jobs=jobs)

    findings: list[Finding] = []
    if pool_is_profitable(jobs, len(sources)):
        modules = list(project.modules.values())
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_lint_worker_init,
            initargs=(modules, config),
        ) as pool:
            for result in pool.map(_lint_one, [path for path, _ in sources]):
                findings.extend(result)
    else:
        for path, source in sources:
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                findings.append(_parse_failure(path, exc))
                continue
            findings.extend(_lint_tree(path, source, tree, config, project))
    return findings, len(files)
