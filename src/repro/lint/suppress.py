"""``# reprolint: disable=RULE`` suppression comments.

A suppression applies to the physical line it shares with code, or —
when the comment stands alone on its own line — to the next code line
(blank lines and comment continuation lines are skipped, so a
justification may wrap).  Every suppression must justify itself by actually masking a
finding: suppressions that mask nothing are themselves reported
(REP000), so stale exemptions cannot accumulate silently.

    norm = d.norm()
    if norm == 0.0:  # reprolint: disable=REP010 - exact zero-vector guard
        ...
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding, Severity

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


@dataclass
class Suppression:
    """One parsed directive comment."""

    line: int
    target: int
    rules: tuple[str, ...]
    used: set[str] = field(default_factory=set)


class SuppressionIndex:
    """All suppression directives of one file, with usage tracking."""

    def __init__(self, suppressions: list[Suppression]) -> None:
        self._by_target: dict[int, list[Suppression]] = {}
        self._all = suppressions
        for sup in suppressions:
            self._by_target.setdefault(sup.target, []).append(sup)

    @classmethod
    def from_source(cls, source: str) -> "SuppressionIndex":
        lines = source.splitlines()
        suppressions: list[Suppression] = []
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return cls([])
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(tok.string)
            if match is None:
                continue
            rules = tuple(r.strip() for r in match.group(1).split(","))
            line = tok.start[0]
            before = lines[line - 1][: tok.start[1]]
            if before.strip():
                target = line  # trailing comment: applies to its own line
            else:
                # Standalone comment: applies to the next code line,
                # skipping blanks and comment continuation lines.
                target = line + 1
                while target <= len(lines):
                    stripped = lines[target - 1].strip()
                    if stripped and not stripped.startswith("#"):
                        break
                    target += 1
            suppressions.append(Suppression(line=line, target=target, rules=rules))
        return cls(suppressions)

    def filter(self, findings: list[Finding]) -> list[Finding]:
        """Drop suppressed findings, marking the suppressions used."""
        kept: list[Finding] = []
        for finding in findings:
            suppressed = False
            for sup in self._by_target.get(finding.line, ()):
                if finding.rule_id in sup.rules:
                    sup.used.add(finding.rule_id)
                    suppressed = True
            if not suppressed:
                kept.append(finding)
        return kept

    def unused(self, path: str, severity: Severity) -> list[Finding]:
        """REP000 findings for directives (or rule ids) that masked nothing."""
        out: list[Finding] = []
        for sup in self._all:
            for rule_id in sup.rules:
                if rule_id not in sup.used:
                    out.append(
                        Finding(
                            rule_id="REP000",
                            path=path,
                            line=sup.line,
                            col=1,
                            message=(
                                f"unused suppression of {rule_id}: no such "
                                f"finding on line {sup.target}"
                            ),
                            severity=severity,
                        )
                    )
        return out
