"""Rule base class and the global rule registry.

Rules are visitors: each declares the AST node types it wants to see and
the shared single-pass walker (:mod:`repro.lint.engine`) dispatches every
node of a file to the rules registered for that node's type.  One walk
per file, however many rules run.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, ClassVar, Iterator

from repro.lint.findings import Finding, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.lint.engine import FileContext

#: All registered rule classes, keyed by rule id.
REGISTRY: dict[str, type["Rule"]] = {}


class Rule:
    """Base class for reprolint rules.

    Subclasses set the class attributes below and implement
    :meth:`check`; decorating with :func:`register` makes the rule
    available to the engine and the CLI.
    """

    #: Stable identifier, e.g. ``"REP001"``.
    id: ClassVar[str]
    #: Short kebab-case slug, e.g. ``"unseeded-rng"``.
    name: ClassVar[str]
    #: One-line summary for ``--list-rules`` and docs.
    summary: ClassVar[str]
    #: Default severity (configurable per run).
    severity: ClassVar[Severity] = Severity.ERROR
    #: True restricts the rule to library code (``src/repro/``): the
    #: determinism contract binds the library, not tests or scripts.
    library_only: ClassVar[bool] = False
    #: fnmatch patterns (posix paths) exempt from this rule by default.
    default_allow: ClassVar[tuple[str, ...]] = ()
    #: AST node classes this rule wants dispatched to :meth:`check`.
    node_types: ClassVar[tuple[type[ast.AST], ...]] = ()

    def check(self, node: ast.AST, ctx: "FileContext") -> Iterator[Finding]:
        """Yield findings for ``node``; called once per matching node."""
        raise NotImplementedError
        yield  # pragma: no cover - makes every override a generator

    def finding(
        self, ctx: "FileContext", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` with this rule's severity."""
        return Finding(
            rule_id=self.id,
            path=ctx.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            severity=ctx.config.severity_for(self.id, self.severity),
        )


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (ids must be unique)."""
    if cls.id in REGISTRY and REGISTRY[cls.id] is not cls:
        raise ValueError(f"duplicate rule id {cls.id}")
    REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[type[Rule]]:
    """Every registered rule, sorted by id (imports the rule modules)."""
    import repro.lint.rules  # noqa: F401 - registers on import

    return [REGISTRY[rule_id] for rule_id in sorted(REGISTRY)]
