"""Finding and severity types shared by every reprolint rule."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class Severity(str, Enum):
    """How a finding affects the exit code.

    ``ERROR`` findings fail the run (exit code 1); ``WARNING`` findings
    are reported but do not affect the exit code.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a specific source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    severity: Severity = Severity.ERROR

    def format(self) -> str:
        """The canonical ``file:line:col RULE message`` text form."""
        return f"{self.path}:{self.line}:{self.col} {self.rule_id} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-report representation."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "severity": self.severity.value,
            "message": self.message,
        }
