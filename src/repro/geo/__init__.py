"""Planar geometry substrate (points, rectangles) used across the library."""

from repro.geo.point import Point, lerp, midpoint
from repro.geo.rect import Rect

__all__ = ["Point", "Rect", "lerp", "midpoint"]
