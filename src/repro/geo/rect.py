"""Axis-aligned rectangles.

Rectangles are the workhorse of the reproduction: shedding regions, range
queries, quad-tree quadrants, base-station bounding boxes, and grid cells
are all :class:`Rect` instances.  Coordinates are meters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.point import Point


@dataclass(frozen=True, slots=True)
class Rect:
    """An immutable, axis-aligned rectangle ``[x1, x2) x [y1, y2)``.

    The half-open convention makes uniform partitionings (grids, quad-tree
    quadrants) tile the plane without double counting points on shared
    edges.  ``x1 <= x2`` and ``y1 <= y2`` are enforced at construction.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    def __post_init__(self) -> None:
        if self.x2 < self.x1 or self.y2 < self.y1:
            raise ValueError(
                f"degenerate rectangle: ({self.x1}, {self.y1}, {self.x2}, {self.y2})"
            )

    @classmethod
    def from_center(cls, center: Point, width: float, height: float | None = None) -> "Rect":
        """Build a rectangle centered on ``center``.

        ``height`` defaults to ``width`` (a square, as used for the
        paper's range queries and shedding regions).
        """
        if height is None:
            height = width
        hw, hh = width / 2.0, height / 2.0
        return cls(center.x - hw, center.y - hh, center.x + hw, center.y + hh)

    @property
    def width(self) -> float:
        return self.x2 - self.x1

    @property
    def height(self) -> float:
        return self.y2 - self.y1

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> Point:
        return Point((self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0)

    def contains(self, p: Point) -> bool:
        """True if ``p`` lies inside (half-open on the max edges)."""
        return self.x1 <= p.x < self.x2 and self.y1 <= p.y < self.y2

    def contains_xy(self, x: float, y: float) -> bool:
        """Like :meth:`contains` but avoids constructing a Point."""
        return self.x1 <= x < self.x2 and self.y1 <= y < self.y2

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share any interior area."""
        return (
            self.x1 < other.x2
            and other.x1 < self.x2
            and self.y1 < other.y2
            and other.y1 < self.y2
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """The overlapping rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x1, other.x1),
            max(self.y1, other.y1),
            min(self.x2, other.x2),
            min(self.y2, other.y2),
        )

    def overlap_fraction(self, other: "Rect") -> float:
        """Fraction of *this* rectangle's area covered by ``other``.

        Used for the paper's fractional query counting: a query partially
        intersecting a shedding region contributes fractionally to that
        region's query count m_i.
        """
        inter = self.intersection(other)
        # reprolint: disable=REP010 - exact guard for a degenerate
        # zero-area rectangle before dividing by self.area.
        if inter is None or self.area == 0.0:
            return 0.0
        return inter.area / self.area

    def quadrants(self) -> tuple["Rect", "Rect", "Rect", "Rect"]:
        """Split into four equal quadrants (SW, SE, NW, NE order)."""
        cx, cy = (self.x1 + self.x2) / 2.0, (self.y1 + self.y2) / 2.0
        return (
            Rect(self.x1, self.y1, cx, cy),
            Rect(cx, self.y1, self.x2, cy),
            Rect(self.x1, cy, cx, self.y2),
            Rect(cx, cy, self.x2, self.y2),
        )

    def clamp_point(self, p: Point) -> Point:
        """The nearest point to ``p`` inside the rectangle."""
        return Point(
            min(max(p.x, self.x1), self.x2),
            min(max(p.y, self.y1), self.y2),
        )

    def intersects_circle(self, center: Point, radius: float) -> bool:
        """True if a disk intersects the rectangle (for base-station coverage)."""
        nearest = self.clamp_point(center)
        return nearest.distance_to(center) <= radius
