"""Planar points and small vector helpers.

All geometry in this package uses a simple Cartesian plane measured in
meters, matching the paper's setting of a ~200 km^2 monitoring region.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2-D point (or vector), in meters.

    Supports the small amount of vector arithmetic the simulator needs:
    addition, subtraction, scalar multiplication, and Euclidean norms.
    """

    x: float
    y: float

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def norm(self) -> float:
        """Euclidean length of this point treated as a vector."""
        return math.hypot(self.x, self.y)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)


def midpoint(a: Point, b: Point) -> Point:
    """The point halfway between ``a`` and ``b``."""
    return Point((a.x + b.x) / 2.0, (a.y + b.y) / 2.0)


def lerp(a: Point, b: Point, t: float) -> Point:
    """Linear interpolation from ``a`` (t=0) to ``b`` (t=1)."""
    return Point(a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t)
