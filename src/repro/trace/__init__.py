"""Mobile-node trace substrate: vehicle simulation and trace containers."""

from repro.trace.fleet import FleetEngine
from repro.trace.generator import ENGINES, TraceGenerator, generate_default_trace
from repro.trace.trace import TRACE_FORMAT_VERSION, Trace
from repro.trace.vehicle import Vehicle

__all__ = [
    "ENGINES",
    "FleetEngine",
    "TRACE_FORMAT_VERSION",
    "Trace",
    "TraceGenerator",
    "Vehicle",
    "generate_default_trace",
]
