"""Mobile-node trace substrate: vehicle simulation and trace containers."""

from repro.trace.generator import TraceGenerator, generate_default_trace
from repro.trace.trace import Trace
from repro.trace.vehicle import Vehicle

__all__ = ["Trace", "TraceGenerator", "Vehicle", "generate_default_trace"]
