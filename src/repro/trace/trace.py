"""Trace container: positions and velocities of a node population over time.

A :class:`Trace` is the reproduction's stand-in for the paper's one-hour
car position trace.  It is numpy-backed — ``positions`` has shape
``(T, N, 2)`` — so downstream consumers (dead reckoning, statistics grids,
query evaluation) can stay vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geo import Rect

#: On-disk ``.npz`` format version written by :meth:`Trace.save`.
#: Version 1 files (no ``version`` field) are still readable; bump this
#: whenever the layout changes incompatibly.
TRACE_FORMAT_VERSION = 2


@dataclass
class Trace:
    """Positions/velocities of ``N`` mobile nodes across ``T`` ticks.

    Attributes:
        bounds: the monitoring region the trace lives in.
        dt: seconds between consecutive ticks.
        positions: float array of shape ``(T, N, 2)``.
        velocities: float array of shape ``(T, N, 2)``, instantaneous.
    """

    bounds: Rect
    dt: float
    positions: np.ndarray
    velocities: np.ndarray

    def __post_init__(self) -> None:
        if self.positions.ndim != 3 or self.positions.shape[2] != 2:
            raise ValueError("positions must have shape (T, N, 2)")
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities must match positions shape")
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    @property
    def num_ticks(self) -> int:
        """Number of time steps ``T``."""
        return self.positions.shape[0]

    @property
    def num_nodes(self) -> int:
        """Population size ``N``."""
        return self.positions.shape[1]

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        return self.num_ticks * self.dt

    def snapshot(self, tick: int) -> np.ndarray:
        """Positions at one tick, shape ``(N, 2)``."""
        return self.positions[tick]

    def speeds(self, tick: int) -> np.ndarray:
        """Instantaneous speeds (m/s) at one tick, shape ``(N,)``."""
        return np.linalg.norm(self.velocities[tick], axis=1)

    def mean_speed(self) -> float:
        """Average speed over all nodes and ticks."""
        return float(np.linalg.norm(self.velocities, axis=2).mean())

    def slice_ticks(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering ticks ``[start, stop)``."""
        return Trace(
            bounds=self.bounds,
            dt=self.dt,
            positions=self.positions[start:stop],
            velocities=self.velocities[start:stop],
        )

    def save(self, path: str | Path, compressed: bool = True) -> None:
        """Persist to a ``.npz`` file (positions, velocities, metadata).

        The file carries a format version (:data:`TRACE_FORMAT_VERSION`)
        so readers can reject layouts they do not understand.
        ``compressed=False`` trades ~10% larger files for several-fold
        faster loads — the trace cache uses it because load latency is
        its whole point.
        """
        writer = np.savez_compressed if compressed else np.savez
        writer(
            Path(path),
            positions=self.positions,
            velocities=self.velocities,
            dt=np.array([self.dt]),
            bounds=np.array(
                [self.bounds.x1, self.bounds.y1, self.bounds.x2, self.bounds.y2]
            ),
            version=np.array([TRACE_FORMAT_VERSION], dtype=np.int64),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load and validate a trace previously written by :meth:`save`.

        Raises ``ValueError`` on unknown format versions, missing or
        malformed fields, non-finite samples, or positions outside the
        stored bounds; shape consistency is enforced by the constructor.
        """
        with np.load(Path(path)) as data:
            fields = set(data.files)
            missing = {"positions", "velocities", "dt", "bounds"} - fields
            if missing:
                raise ValueError(f"trace file {path} is missing fields {sorted(missing)}")
            version = int(data["version"][0]) if "version" in fields else 1
            if version > TRACE_FORMAT_VERSION:
                raise ValueError(
                    f"trace file {path} has format version {version}; this "
                    f"reader supports <= {TRACE_FORMAT_VERSION}"
                )
            bounds_arr = np.asarray(data["bounds"], dtype=np.float64)
            if bounds_arr.shape != (4,):
                raise ValueError(f"trace file {path} has malformed bounds")
            bounds = Rect(*bounds_arr.tolist())
            trace = cls(
                bounds=bounds,
                dt=float(data["dt"][0]),
                positions=data["positions"],
                velocities=data["velocities"],
            )
        if not (
            np.isfinite(trace.positions).all() and np.isfinite(trace.velocities).all()
        ):
            raise ValueError(f"trace file {path} contains non-finite samples")
        xs = trace.positions[:, :, 0]
        ys = trace.positions[:, :, 1]
        if trace.positions.size and not (
            (xs >= bounds.x1).all()
            and (xs <= bounds.x2).all()
            and (ys >= bounds.y1).all()
            and (ys <= bounds.y2).all()
        ):
            raise ValueError(f"trace file {path} has positions outside its bounds")
        return trace
