"""Trace container: positions and velocities of a node population over time.

A :class:`Trace` is the reproduction's stand-in for the paper's one-hour
car position trace.  It is numpy-backed — ``positions`` has shape
``(T, N, 2)`` — so downstream consumers (dead reckoning, statistics grids,
query evaluation) can stay vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geo import Rect


@dataclass
class Trace:
    """Positions/velocities of ``N`` mobile nodes across ``T`` ticks.

    Attributes:
        bounds: the monitoring region the trace lives in.
        dt: seconds between consecutive ticks.
        positions: float array of shape ``(T, N, 2)``.
        velocities: float array of shape ``(T, N, 2)``, instantaneous.
    """

    bounds: Rect
    dt: float
    positions: np.ndarray
    velocities: np.ndarray

    def __post_init__(self) -> None:
        if self.positions.ndim != 3 or self.positions.shape[2] != 2:
            raise ValueError("positions must have shape (T, N, 2)")
        if self.velocities.shape != self.positions.shape:
            raise ValueError("velocities must match positions shape")
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    @property
    def num_ticks(self) -> int:
        """Number of time steps ``T``."""
        return self.positions.shape[0]

    @property
    def num_nodes(self) -> int:
        """Population size ``N``."""
        return self.positions.shape[1]

    @property
    def duration(self) -> float:
        """Total trace duration in seconds."""
        return self.num_ticks * self.dt

    def snapshot(self, tick: int) -> np.ndarray:
        """Positions at one tick, shape ``(N, 2)``."""
        return self.positions[tick]

    def speeds(self, tick: int) -> np.ndarray:
        """Instantaneous speeds (m/s) at one tick, shape ``(N,)``."""
        return np.linalg.norm(self.velocities[tick], axis=1)

    def mean_speed(self) -> float:
        """Average speed over all nodes and ticks."""
        return float(np.linalg.norm(self.velocities, axis=2).mean())

    def slice_ticks(self, start: int, stop: int) -> "Trace":
        """A sub-trace covering ticks ``[start, stop)``."""
        return Trace(
            bounds=self.bounds,
            dt=self.dt,
            positions=self.positions[start:stop],
            velocities=self.velocities[start:stop],
        )

    def save(self, path: str | Path) -> None:
        """Persist to a ``.npz`` file (positions, velocities, metadata)."""
        np.savez_compressed(
            Path(path),
            positions=self.positions,
            velocities=self.velocities,
            dt=np.array([self.dt]),
            bounds=np.array(
                [self.bounds.x1, self.bounds.y1, self.bounds.x2, self.bounds.y2]
            ),
        )

    @classmethod
    def load(cls, path: str | Path) -> "Trace":
        """Load a trace previously written by :meth:`save`."""
        with np.load(Path(path)) as data:
            bounds = Rect(*data["bounds"].tolist())
            return cls(
                bounds=bounds,
                dt=float(data["dt"][0]),
                positions=data["positions"],
                velocities=data["velocities"],
            )
