"""Vectorized struct-of-arrays fleet engine for trace generation.

The object path (:class:`~repro.trace.vehicle.Vehicle`) steps one car at
a time with per-vehicle RNG calls; at the paper's population sizes that
loop dominates scenario-build time.  :class:`FleetEngine` keeps the whole
fleet in numpy arrays (``seg_id``, ``origin_node``, ``offset``,
``speed_factor``, ``speed``) and advances every vehicle per tick with a
handful of array operations:

* The common case — the vehicle stays on its segment for the whole tick
  — is a single fused advance over the full population.
* The small crossing subset is resolved by a batched intersection-turn
  step: a precomputed CSR adjacency plus a per-node cumulative
  turn-weight table turn the weighted next-segment choice into one
  ``searchsorted`` over uniforms instead of a per-vehicle ``rng.choice``.

The engine is fully deterministic given its RNG (bit-reproducible across
runs for a fixed seed) and statistically equivalent to the object path —
same seeding distribution, same per-segment speed law, same
traffic-weighted turn distribution — but it consumes the RNG stream in
batched order, so individual vehicle paths differ from the object
engine's.  See DESIGN.md ("Fleet-engine RNG semantics") for the exact
contract.
"""

from __future__ import annotations

import numpy as np

from repro.roadnet import RoadNetwork, TrafficVolumeModel

#: Per-tick cap on batched turn iterations.  Real networks need 2-4
#: (a vehicle crosses at most a few intersections per 10 s tick); the cap
#: only bites on degenerate graphs (zero-length segment cycles), where it
#: parks the affected vehicles at their current intersection for the rest
#: of the tick instead of spinning forever.
MAX_TURNS_PER_TICK = 64


class FleetEngine:
    """Whole-fleet vehicle simulation in numpy arrays.

    Dynamic state (one entry per vehicle):

    * ``seg_id`` — current segment index (int64)
    * ``origin_node`` — the endpoint the vehicle is moving away from
    * ``offset`` — meters traveled from ``origin_node`` along the segment
    * ``speed_factor`` — persistent per-driver speed multiplier
    * ``speed`` — current speed in m/s (0 until the first step)

    Static tables are derived once from the network and traffic model:
    segment endpoints/lengths/speed limits, node coordinates, CSR
    adjacency, and per-node cumulative turn weights.
    """

    def __init__(
        self,
        network: RoadNetwork,
        traffic: TrafficVolumeModel,
        n_vehicles: int,
        rng: np.random.Generator,
    ) -> None:
        if n_vehicles <= 0:
            raise ValueError("n_vehicles must be positive")
        self.network = network
        self.n_vehicles = n_vehicles

        arrays = network.segment_arrays()
        self.seg_a = arrays["a"]
        self.seg_b = arrays["b"]
        self.seg_len = arrays["length"]
        self.seg_limit = arrays["speed_limit"]
        self.node_xy = arrays["node_xy"]

        self.adj_indptr, self.adj_segs = network.adjacency_csr()
        self.turn_w = traffic.all_turn_weights()
        adj_w = self.turn_w[self.adj_segs]
        if adj_w.size and adj_w.min() < 0.0:
            raise ValueError("turn weights must be non-negative")
        # Global running cumsum over the CSR value array; per-node totals
        # and prefixes are recovered by subtracting the value just before
        # each node's slice.
        self.adj_cumw = np.cumsum(adj_w)
        self._adj_w = adj_w

        # Where each segment sits inside its endpoints' adjacency slices
        # (a segment appears exactly once under each endpoint).  Lets the
        # turn step find the arrival segment's CSR position with a gather
        # instead of a search.
        n_segs = len(network.segments)
        self.seg_pos_a = np.full(n_segs, -1, dtype=np.int64)
        self.seg_pos_b = np.full(n_segs, -1, dtype=np.int64)
        for node in range(len(network.nodes)):
            for pos in range(int(self.adj_indptr[node]), int(self.adj_indptr[node + 1])):
                seg = int(self.adj_segs[pos])
                if self.seg_a[seg] == node:
                    self.seg_pos_a[seg] = pos
                else:
                    self.seg_pos_b[seg] = pos

        # --- dynamic state, seeded like the object path -----------------
        probs = traffic.sampling_probabilities()
        self.seg_id = rng.choice(len(probs), size=n_vehicles, p=probs).astype(np.int64)
        toward_b = rng.random(n_vehicles) < 0.5
        self.origin_node = np.where(
            toward_b, self.seg_a[self.seg_id], self.seg_b[self.seg_id]
        )
        self.offset = rng.uniform(0.0, 1.0, n_vehicles) * self.seg_len[self.seg_id]
        self.speed_factor = rng.uniform(0.65, 1.0, n_vehicles)
        self.speed = np.zeros(n_vehicles, dtype=np.float64)

    # ------------------------------------------------------------------
    # stepping

    def step(self, dt: float, rng: np.random.Generator) -> None:
        """Advance every vehicle by ``dt`` seconds."""
        n = self.n_vehicles
        jitter = rng.uniform(0.9, 1.05, n)
        self.speed = self.seg_limit[self.seg_id] * self.speed_factor * jitter

        remaining = np.full(n, float(dt))
        distance_left = self.seg_len[self.seg_id] - self.offset
        travel = self.speed * remaining
        stays = travel < distance_left
        self.offset[stays] += travel[stays]

        crossing = np.nonzero(~stays)[0]
        turns = 0
        while crossing.size:
            turns += 1
            if turns > MAX_TURNS_PER_TICK:
                remaining[crossing] = 0.0
                break
            sid = self.seg_id[crossing]
            speed = np.maximum(self.speed[crossing], 1e-9)
            distance_left = self.seg_len[sid] - self.offset[crossing]
            remaining[crossing] -= distance_left / speed
            arrived = np.where(
                self.origin_node[crossing] == self.seg_a[sid],
                self.seg_b[sid],
                self.seg_a[sid],
            )
            new_seg = self._batched_turn(arrived, sid, rng)
            self.seg_id[crossing] = new_seg
            self.origin_node[crossing] = arrived
            self.offset[crossing] = 0.0

            # Fresh per-segment speed on the new road, as the object path
            # resamples its jitter each time through its while loop.
            new_jitter = rng.uniform(0.9, 1.05, crossing.size)
            new_speed = self.seg_limit[new_seg] * self.speed_factor[crossing] * new_jitter
            self.speed[crossing] = new_speed

            time_left = np.maximum(remaining[crossing], 0.0)
            travel = new_speed * time_left
            new_len = self.seg_len[new_seg]
            stays = travel < new_len
            advanced = crossing[stays]
            self.offset[advanced] = travel[stays]
            crossing = crossing[~stays & (remaining[crossing] > 0.0)]

    def _batched_turn(
        self,
        arrived: np.ndarray,
        cur_seg: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Weighted next-segment choice for a batch of crossing vehicles.

        Implements the object path's turn rule — pick an incident segment
        other than the current one with probability proportional to its
        turn weight, U-turning only at dead ends — as one ``searchsorted``
        over the per-node cumulative turn-weight table.  The current
        segment is excluded exactly by shifting the sampled target past
        its weight interval rather than by rejection sampling, keeping
        the RNG consumption fixed at one uniform per turning vehicle.
        """
        start = self.adj_indptr[arrived]
        end = self.adj_indptr[arrived + 1]
        degree = end - start

        cum_before_slice = self.adj_cumw[start] - self._adj_w[start]
        total = self.adj_cumw[end - 1] - cum_before_slice
        w_cur = self.turn_w[cur_seg]
        available = total - w_cur

        # CSR position of the segment the vehicle arrived on, under the
        # arrival node.
        cur_pos = np.where(
            arrived == self.seg_a[cur_seg],
            self.seg_pos_a[cur_seg],
            self.seg_pos_b[cur_seg],
        )
        cum_before_cur = self.adj_cumw[cur_pos] - w_cur - cum_before_slice

        target = rng.random(arrived.size) * available
        # Skip the current segment's weight interval.
        target = np.where(target >= cum_before_cur, target + w_cur, target)
        pos = np.searchsorted(self.adj_cumw, cum_before_slice + target, side="right")
        pos = np.clip(pos, start, end - 1)
        # Float-boundary landings on the excluded segment get nudged to a
        # neighbor inside the slice.
        on_cur = pos == cur_pos
        if np.any(on_cur):
            bump = np.where(cur_pos + 1 < end, 1, -1)
            pos = np.where(on_cur, np.clip(cur_pos + bump, start, end - 1), pos)
        new_seg = self.adj_segs[pos]

        # Dead ends (or zero available weight) U-turn on the same segment.
        dead = (degree <= 1) | (available <= 0.0)
        return np.where(dead, cur_seg, new_seg)

    # ------------------------------------------------------------------
    # recording

    def record(self, pos_out: np.ndarray, vel_out: np.ndarray) -> None:
        """Write current positions/velocities into ``(N, 2)`` arrays."""
        sid = self.seg_id
        other = np.where(
            self.origin_node == self.seg_a[sid], self.seg_b[sid], self.seg_a[sid]
        )
        origin_xy = self.node_xy[self.origin_node]
        other_xy = self.node_xy[other]
        delta = other_xy - origin_xy

        length = self.seg_len[sid]
        safe_len = np.where(length > 0.0, length, 1.0)
        t = np.clip(self.offset / safe_len, 0.0, 1.0)
        t = np.where(length > 0.0, t, 0.0)
        np.copyto(pos_out, origin_xy + delta * t[:, None])

        norm = np.hypot(delta[:, 0], delta[:, 1])
        safe_norm = np.where(norm > 0.0, norm, 1.0)
        heading = np.where(norm[:, None] > 0.0, delta / safe_norm[:, None], 0.0)
        speed = np.where(
            self.speed > 0.0, self.speed, self.seg_limit[sid] * self.speed_factor
        )
        np.copyto(vel_out, heading * speed[:, None])
