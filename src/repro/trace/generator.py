"""Trace generation: seeded vehicle simulation on a road network.

Replaces the paper's (unavailable) trace generator.  Vehicles are seeded
onto segments proportionally to traffic volume, then stepped forward in
discrete time; the resulting :class:`~repro.trace.trace.Trace` has the
skewed density and class-dependent speed heterogeneity LIRA exploits.

Two interchangeable engines step the fleet:

* ``engine="fleet"`` (default) — :class:`~repro.trace.fleet.FleetEngine`,
  struct-of-arrays numpy stepping; the fast path.
* ``engine="object"`` — the original per-:class:`Vehicle` loop; the
  reference implementation the fleet engine is validated against.

Both are deterministic given ``seed``; they draw from the RNG in
different orders, so they produce statistically equivalent but not
identical traces (see DESIGN.md).
"""

from __future__ import annotations

import numpy as np

from repro.roadnet import RoadNetwork, TrafficVolumeModel
from repro.trace.fleet import FleetEngine
from repro.trace.trace import Trace
from repro.trace.vehicle import Vehicle

ENGINES = ("fleet", "object")


class TraceGenerator:
    """Generates position traces of ``n_vehicles`` cars on a road network.

    Fully deterministic given ``seed``.  A short warm-up period lets the
    population settle into the traffic model's steady-state distribution
    before recording begins.
    """

    def __init__(
        self,
        network: RoadNetwork,
        traffic: TrafficVolumeModel,
        n_vehicles: int,
        seed: int = 7,
        engine: str = "fleet",
    ) -> None:
        if n_vehicles <= 0:
            raise ValueError("n_vehicles must be positive")
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of {ENGINES}")
        self.network = network
        self.traffic = traffic
        self.n_vehicles = n_vehicles
        self.seed = seed
        self.engine = engine
        self._rng = np.random.default_rng(seed)
        if engine == "fleet":
            self._fleet = FleetEngine(network, traffic, n_vehicles, self._rng)
            self.vehicles: list[Vehicle] = []
        else:
            self._fleet = None
            self.vehicles = self._seed_vehicles()

    def _seed_vehicles(self) -> list[Vehicle]:
        probs = self.traffic.sampling_probabilities()
        seg_choices = self._rng.choice(len(probs), size=self.n_vehicles, p=probs)
        vehicles = []
        for seg_id in seg_choices:
            seg = self.network.segments[int(seg_id)]
            origin = seg.a if self._rng.random() < 0.5 else seg.b
            offset = float(self._rng.uniform(0.0, seg.length))
            speed_factor = float(self._rng.uniform(0.65, 1.0))
            vehicles.append(
                Vehicle(
                    seg_id=int(seg_id),
                    origin_node=origin,
                    offset=offset,
                    speed_factor=speed_factor,
                )
            )
        return vehicles

    def generate(
        self,
        duration: float,
        dt: float = 10.0,
        warmup: float = 0.0,
    ) -> Trace:
        """Simulate for ``duration`` seconds, recording every ``dt``.

        ``warmup`` seconds are simulated (in ``dt`` steps) before
        recording starts; use it to decorrelate from the seeding
        distribution.  Returns a :class:`Trace` with
        ``T = ceil(duration / dt)`` ticks.
        """
        if duration <= 0 or dt <= 0:
            raise ValueError("duration and dt must be positive")
        warmup_steps = int(round(warmup / dt))
        for _ in range(warmup_steps):
            self._step_all(dt)

        num_ticks = int(np.ceil(duration / dt))
        positions = np.empty((num_ticks, self.n_vehicles, 2), dtype=np.float64)
        velocities = np.empty_like(positions)
        for t in range(num_ticks):
            self._record(positions[t], velocities[t])
            self._step_all(dt)
        return Trace(
            bounds=self.network.bounds, dt=dt, positions=positions, velocities=velocities
        )

    def _step_all(self, dt: float) -> None:
        if self._fleet is not None:
            self._fleet.step(dt, self._rng)
            return
        for vehicle in self.vehicles:
            vehicle.step(self.network, self.traffic, dt, self._rng)

    def _record(self, pos_out: np.ndarray, vel_out: np.ndarray) -> None:
        if self._fleet is not None:
            self._fleet.record(pos_out, vel_out)
            return
        for i, vehicle in enumerate(self.vehicles):
            p = vehicle.position(self.network)
            h = vehicle.heading(self.network)
            speed = vehicle.speed or (
                vehicle.current_speed_limit(self.network) * vehicle.speed_factor
            )
            pos_out[i, 0] = p.x
            pos_out[i, 1] = p.y
            vel_out[i, 0] = h.x * speed
            vel_out[i, 1] = h.y * speed


def generate_default_trace(
    n_vehicles: int = 2000,
    duration: float = 3600.0,
    dt: float = 10.0,
    seed: int = 7,
    side_meters: float = 14_000.0,
    engine: str = "fleet",
) -> Trace:
    """One-call trace: default scene + generator + one-hour simulation.

    With default arguments this mirrors the paper's setup (an hour-long
    car trace over ~200 km^2), at a laptop-friendly population size.
    """
    from repro.roadnet import make_default_scene

    network, traffic = make_default_scene(side_meters=side_meters, seed=seed)
    generator = TraceGenerator(
        network, traffic, n_vehicles=n_vehicles, seed=seed, engine=engine
    )
    return generator.generate(duration=duration, dt=dt, warmup=10 * dt)
