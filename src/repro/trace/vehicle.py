"""Single-vehicle movement model on a road network.

Vehicles follow road segments at a per-class speed, turn at intersections
with probabilities proportional to traffic weights (so they gravitate to
expressways and hotspots, like the paper's volume-driven trace), and
occasionally dawdle or speed up.  Movement is deterministic given the
generator's RNG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Point
from repro.roadnet import RoadNetwork, TrafficVolumeModel

#: Cap on intersection turns within a single ``step`` call.  A vehicle
#: that reaches a zero-length segment makes no progress (``distance_left
#: == 0`` consumes no time), so without a cap the ``while remaining``
#: loop can spin forever on degenerate graphs; past the cap the vehicle
#: parks at its current intersection until the next tick.
MAX_TURNS_PER_STEP = 64


@dataclass
class Vehicle:
    """A car traversing the road network.

    State is (segment, direction, offset): the car is ``offset`` meters
    from ``origin_node`` heading toward the other endpoint of
    ``seg_id``.  ``speed_factor`` is a persistent per-driver multiplier
    on road speed limits.
    """

    seg_id: int
    origin_node: int
    offset: float
    speed_factor: float
    speed: float = 0.0

    def position(self, network: RoadNetwork) -> Point:
        """Current position on the network."""
        seg = network.segments[self.seg_id]
        if self.origin_node == seg.a:
            return network.point_on_segment(self.seg_id, self.offset)
        return network.point_on_segment(self.seg_id, seg.length - self.offset)

    def heading(self, network: RoadNetwork) -> Point:
        """Unit vector in the direction of travel (zero if degenerate)."""
        seg = network.segments[self.seg_id]
        a = network.nodes[self.origin_node]
        b = network.nodes[seg.other_end(self.origin_node)]
        d = b - a
        norm = d.norm()
        # reprolint: disable=REP010 - exact guard against a zero-length
        # segment vector; any nonzero norm, however tiny, divides fine.
        if norm == 0.0:
            return Point(0.0, 0.0)
        return Point(d.x / norm, d.y / norm)

    def current_speed_limit(self, network: RoadNetwork) -> float:
        return network.segments[self.seg_id].road_class.speed_limit

    def step(
        self,
        network: RoadNetwork,
        traffic: TrafficVolumeModel,
        dt: float,
        rng: np.random.Generator,
    ) -> None:
        """Advance the vehicle by ``dt`` seconds.

        The car moves at the segment speed limit scaled by its driver
        factor and a small per-tick jitter.  On reaching an intersection
        it picks the next segment with probability proportional to the
        traffic turn weights, avoiding a U-turn unless at a dead end.
        """
        remaining = dt
        turns = 0
        while remaining > 0.0:
            limit = self.current_speed_limit(network)
            self.speed = limit * self.speed_factor * rng.uniform(0.9, 1.05)
            seg = network.segments[self.seg_id]
            distance_left = seg.length - self.offset
            travel = self.speed * remaining
            if travel < distance_left:
                self.offset += travel
                return
            # Reach the far intersection and turn.
            remaining -= distance_left / max(self.speed, 1e-9)
            turns += 1
            if turns > MAX_TURNS_PER_STEP:
                # Zero-length segments consume no time, so a degenerate
                # graph can trap the loop; park at the intersection.
                self.offset = seg.length
                return
            arrived_at = seg.other_end(self.origin_node)
            self._turn(network, traffic, arrived_at, rng)

    def _turn(
        self,
        network: RoadNetwork,
        traffic: TrafficVolumeModel,
        node: int,
        rng: np.random.Generator,
    ) -> None:
        options = [s for s in network.incident_segments(node) if s != self.seg_id]
        if not options:
            # Dead end: U-turn on the same segment.
            options = [self.seg_id]
        weights = np.array([traffic.turn_weight(s) for s in options], dtype=np.float64)
        total = weights.sum()
        if total <= 0.0:
            choice = options[int(rng.integers(len(options)))]
        else:
            choice = options[int(rng.choice(len(options), p=weights / total))]
        self.seg_id = choice
        self.origin_node = node
        self.offset = 0.0
