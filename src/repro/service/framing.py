"""Length-prefixed npz frames: the wire format of the live service.

A frame is::

    MAGIC (4 bytes) | header_len (u32 BE) | body_len (u32 BE)
    | header (JSON, utf-8) | body (npz archive, may be empty)

The JSON header carries the frame ``kind`` plus small scalar metadata
(sequence numbers, timestamps, counters); the npz body carries the bulk
numeric payload (report batches, plan thresholds) without any per-value
Python boxing.  npz is the project's one serialization format — the
trace cache, plan persistence, and now the wire all speak it — so the
service adds no dependency the container does not already bake in.

Framing is strict: a wrong magic or an oversized declared length fails
immediately instead of letting a desynchronized stream masquerade as
garbage frames.
"""

from __future__ import annotations

import asyncio
import io
import json
import struct
from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np

__all__ = ["Frame", "FrameError", "encode_frame", "decode_frame", "read_frame"]

MAGIC = b"LCQ1"
_PREFIX = struct.Struct(">4sII")

#: Hard cap on either section of a frame (64 MiB).  A desynchronized or
#: malicious stream then fails fast instead of asking asyncio to buffer
#: gigabytes that a corrupted length prefix "declared".
MAX_SECTION_BYTES = 64 * 1024 * 1024


class FrameError(ValueError):
    """The byte stream does not contain a well-formed frame."""


@dataclass(frozen=True)
class Frame:
    """One decoded protocol frame."""

    kind: str
    meta: dict[str, Any]
    arrays: dict[str, np.ndarray] = field(default_factory=dict)


def encode_frame(
    kind: str,
    meta: Mapping[str, Any] | None = None,
    arrays: Mapping[str, np.ndarray] | None = None,
) -> bytes:
    """Serialize one frame to bytes."""
    header = json.dumps(
        {"kind": kind, "meta": dict(meta or {})}, separators=(",", ":")
    ).encode("utf-8")
    if arrays:
        body_io = io.BytesIO()
        # Uncompressed npz: latency matters more than the handful of
        # bytes compression would shave off loopback frames.
        np.savez(body_io, **dict(arrays))
        body = body_io.getvalue()
    else:
        body = b""
    if len(header) > MAX_SECTION_BYTES or len(body) > MAX_SECTION_BYTES:
        raise FrameError("frame section exceeds MAX_SECTION_BYTES")
    return _PREFIX.pack(MAGIC, len(header), len(body)) + header + body


def decode_frame(data: bytes) -> Frame:
    """Decode one complete frame from bytes (the inverse of
    :func:`encode_frame`)."""
    if len(data) < _PREFIX.size:
        raise FrameError("short frame: missing prefix")
    magic, header_len, body_len = _PREFIX.unpack_from(data)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if header_len > MAX_SECTION_BYTES or body_len > MAX_SECTION_BYTES:
        raise FrameError("declared frame section exceeds MAX_SECTION_BYTES")
    expected = _PREFIX.size + header_len + body_len
    if len(data) != expected:
        raise FrameError(f"frame length mismatch: {len(data)} != {expected}")
    header_bytes = data[_PREFIX.size : _PREFIX.size + header_len]
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise FrameError(f"bad frame header: {exc}") from exc
    kind = header.get("kind")
    if not isinstance(kind, str):
        raise FrameError("frame header missing string 'kind'")
    meta = header.get("meta") or {}
    if not isinstance(meta, dict):
        raise FrameError("frame 'meta' must be an object")
    arrays: dict[str, np.ndarray] = {}
    if body_len:
        body = data[_PREFIX.size + header_len :]
        with np.load(io.BytesIO(body), allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
    return Frame(kind=kind, meta=meta, arrays=arrays)


async def read_frame(reader: asyncio.StreamReader) -> Frame | None:
    """Read exactly one frame from a stream; ``None`` on clean EOF.

    EOF mid-frame (the peer died between prefix and payload) raises
    :class:`FrameError` — a half-frame is corruption, not a clean close.
    """
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise FrameError("EOF inside a frame prefix") from exc
    magic, header_len, body_len = _PREFIX.unpack(prefix)
    if magic != MAGIC:
        raise FrameError(f"bad magic {magic!r}")
    if header_len > MAX_SECTION_BYTES or body_len > MAX_SECTION_BYTES:
        raise FrameError("declared frame section exceeds MAX_SECTION_BYTES")
    try:
        rest = await reader.readexactly(header_len + body_len)
    except asyncio.IncompleteReadError as exc:
        raise FrameError("EOF inside a frame payload") from exc
    return decode_frame(prefix + rest)
