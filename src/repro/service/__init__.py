"""Live asyncio service façade over a LIRA deployment.

``python -m repro.service --socket /tmp/lira.sock`` runs a server;
:mod:`repro.loadtest` drives it with an open-loop workload.  The wire
format is length-prefixed JSON+npz frames (:mod:`repro.service.framing`).
"""

from repro.service.framing import (
    Frame,
    FrameError,
    decode_frame,
    encode_frame,
    read_frame,
)
from repro.service.service import IngestResult, LiraService, ServiceConfig

__all__ = [
    "Frame",
    "FrameError",
    "IngestResult",
    "LiraService",
    "ServiceConfig",
    "decode_frame",
    "encode_frame",
    "read_frame",
]
