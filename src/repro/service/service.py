"""The live asyncio façade over a LIRA deployment.

:class:`LiraService` wraps the same components the systems loop wires
together — :class:`~repro.server.cq_server.MobileCQServer` (bounded
queue + node table), :class:`~repro.core.shedder.LiraLoadShedder`
(GRIDREDUCE + GREEDYINCREMENT + THROTLOOP), and the
:class:`~repro.server.protocol.BaseStationNetwork` — behind a socket
protocol, so real concurrent clients can drive it under wall-clock load
instead of a lockstep tick loop.  Three concerns run decoupled, exactly
as the paper's architecture separates them:

* **ingest** — clients stream ``ingest`` frames of position reports;
  the server enqueues them into the bounded queue and acknowledges each
  frame *after its admitted reports have been applied* to the node
  table ("ack-after-apply"), so a measured ingest latency includes the
  queue wait that overload actually causes;
* **service pump** — a periodic task grants the queue ``μ·dt`` of
  processing capacity per real elapsed ``dt`` (scaled through the
  optional :class:`~repro.faults.FaultInjector` slowdown seam), then
  completes any acks whose reports have drained;
* **adaptation** — a periodic task closes a load-measurement period,
  steps THROTLOOP, recomputes the shedding plan from the *believed*
  node state, installs it into the station network, and pushes it to
  every subscribed client.

Every timestamp flows through the :data:`repro.timing.Clock` seam —
:func:`repro.timing.monotonic` in production (comparable across
processes on Linux), :class:`repro.timing.ManualClock` in tests — so
the service itself never reads the wall clock (REP002).

Policy semantics mirror :class:`~repro.server.system.LiraSystem`:
``"lira"`` computes real region plans so clients shed at the *sources*;
``"random-drop"`` is the paper's uncontrolled regime — a trivial
one-region plan at Δ⊢ (no source throttling) with overload handled by
queue-overflow dropping alone.
"""

from __future__ import annotations

import asyncio
import logging
from collections import deque
from dataclasses import dataclass
from typing import Any, Coroutine

import numpy as np

from repro import sanitize, timing
from repro.core import LiraConfig, LiraLoadShedder, StatisticsGrid
from repro.core.greedy import RegionStats
from repro.core.plan import PlanDelta, SheddingPlan, clamp_thresholds
from repro.core.reduction import AnalyticReduction, ReductionFunction
from repro.faults import FaultInjector, FaultSpec
from repro.geo import Rect
from repro.queries import QueryDistribution, RangeQuery, generate_workload
from repro.server.base_station import place_uniform_stations
from repro.server.cq_server import MobileCQServer
from repro.server.protocol import BaseStationNetwork
from repro.server.system import POLICIES
from repro.service.framing import Frame, FrameError, encode_frame, read_frame

logger = logging.getLogger(__name__)

__all__ = ["IngestResult", "LiraService", "ServiceConfig"]


@dataclass(frozen=True)
class ServiceConfig:
    """Declarative scenario for one service process.

    Everything a :class:`LiraService` needs is derived from these
    scalars (plus a seed), so a load generator in another process can
    reconstruct the matching scenario from the same values — the
    monitoring bounds and query workload must agree on both sides.
    """

    side: float = 10_000.0
    n_nodes: int = 400
    n_queries: int = 20
    query_side: float = 1_500.0
    workload_seed: int = 7
    service_rate: float = 1_500.0
    queue_capacity: int = 600
    policy: str = "lira"
    adapt_period: float = 0.5
    pump_period: float = 0.005
    station_radius: float = 4_000.0
    l: int = 13
    alpha: int = 16
    delta_min: float = 5.0
    delta_max: float = 100.0
    #: THROTLOOP target ρ.  The paper's 1−1/B only *stabilizes* queue
    #: length; a latency SLO needs sustained headroom to drain backlog.
    utilization_target: float = 0.8
    #: EWMA weight on utilization measurements: the fleet reacts to a
    #: new plan with about one tick of lag, so the raw control law limit
    #: cycles around the target; smoothing damps it.
    throttle_smoothing: float = 0.5
    #: Server-slowdown chaos (FaultInjector seam); prob 0 disables.
    slowdown_prob: float = 0.0
    slowdown_factor: float = 0.3
    slowdown_duration: float = 0.0
    fault_seed: int = 0
    #: Cross-round incremental adaptation (bit-identical plans; enables
    #: delta installs/broadcasts and skipped pushes of unchanged plans).
    incremental: bool = True

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        if self.side <= 0:
            raise ValueError("side must be positive")
        if self.adapt_period <= 0 or self.pump_period <= 0:
            raise ValueError("adapt_period and pump_period must be positive")

    @property
    def bounds(self) -> Rect:
        return Rect(0.0, 0.0, self.side, self.side)

    def lira_config(self) -> LiraConfig:
        return LiraConfig(
            l=self.l,
            alpha=self.alpha,
            delta_min=self.delta_min,
            delta_max=self.delta_max,
        )

    def queries(self) -> list[RangeQuery]:
        """The scenario's query workload (pure function of the config)."""
        return generate_workload(
            self.bounds,
            self.n_queries,
            self.query_side,
            distribution=QueryDistribution.RANDOM,
            seed=self.workload_seed,
        )

    def faults(self) -> FaultInjector | None:
        if self.slowdown_prob <= 0:
            return None
        spec = FaultSpec(
            slowdown_prob=self.slowdown_prob,
            slowdown_factor=self.slowdown_factor,
            slowdown_duration=self.slowdown_duration,
        )
        return FaultInjector(spec, seed=self.fault_seed)

    def build(self, clock: timing.Clock = timing.monotonic) -> "LiraService":
        reduction = AnalyticReduction(self.delta_min, self.delta_max)
        return LiraService(
            bounds=self.bounds,
            n_nodes=self.n_nodes,
            queries=self.queries(),
            reduction=reduction,
            config=self.lira_config(),
            service_rate=self.service_rate,
            queue_capacity=self.queue_capacity,
            policy=self.policy,
            adapt_period=self.adapt_period,
            pump_period=self.pump_period,
            station_radius=self.station_radius,
            utilization_target=self.utilization_target,
            throttle_smoothing=self.throttle_smoothing,
            faults=self.faults(),
            incremental=self.incremental,
            clock=clock,
        )


@dataclass(frozen=True)
class IngestResult:
    """Outcome of applying one ingest frame to the server.

    ``mark`` is the queue's ``lifetime_enqueued`` reading after the
    frame's reports were offered; the frame counts as *applied* once
    ``lifetime_dequeued`` reaches it (FIFO makes the comparison exact).
    ``None`` means nothing was admitted, so the ack owes no queue wait.
    """

    admitted: int
    dropped: int
    queue_length: int
    mark: int | None


@dataclass
class _PendingAck:
    """An ingest ack deferred until the queue drains past ``mark``."""

    writer: asyncio.StreamWriter
    meta: dict
    mark: int


@dataclass
class _Subscriber:
    """One plan-push channel: a connection that sent ``subscribe``."""

    writer: asyncio.StreamWriter
    station_id: int | None = None
    #: Epoch of the last full-channel plan this subscriber received —
    #: a delta frame is only sent to subscribers sitting at its base
    #: epoch; everyone else gets a full-plan resync.
    epoch: int | None = None


@dataclass
class ServiceCounters:
    """Monotonic service-level accounting (wire activity, not queue state)."""

    ingest_frames: int = 0
    reports_received: int = 0
    acks_sent: int = 0
    acks_deferred: int = 0
    plans_computed: int = 0
    plans_pushed: int = 0
    #: Of ``plans_pushed``, how many went out as compact delta frames.
    delta_plans_pushed: int = 0
    #: Pushes skipped because the subscriber's content was unchanged.
    plan_pushes_skipped: int = 0
    #: Plan/delta frame encodings (≤ once per kind per installed plan,
    #: regardless of subscriber count).
    plan_frames_encoded: int = 0
    protocol_errors: int = 0


class LiraService:
    """One live LIRA server endpoint (see the module docstring).

    The constructor takes fully built components so tests can inject a
    :class:`~repro.timing.ManualClock` and drive :meth:`apply_ingest` /
    :meth:`adapt_once` synchronously without any socket; production
    entry points build from a :class:`ServiceConfig` and call
    :meth:`start`.
    """

    def __init__(
        self,
        bounds: Rect,
        n_nodes: int,
        queries: list[RangeQuery],
        reduction: ReductionFunction,
        config: LiraConfig | None = None,
        service_rate: float = 1_500.0,
        queue_capacity: int = 600,
        policy: str = "lira",
        adapt_period: float = 0.5,
        pump_period: float = 0.005,
        station_radius: float = 4_000.0,
        utilization_target: float | None = 0.8,
        throttle_smoothing: float | None = 0.5,
        faults: FaultInjector | None = None,
        incremental: bool = True,
        clock: timing.Clock = timing.monotonic,
    ) -> None:
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}")
        self.config = config or LiraConfig(l=13, alpha=16)
        self.bounds = bounds
        self.n_nodes = n_nodes
        self.policy = policy
        self.clock = clock
        self.faults = faults
        self.incremental = incremental
        self.adapt_period = adapt_period
        self.pump_period = pump_period
        self.server = MobileCQServer(
            bounds,
            n_nodes,
            queries,
            service_rate=service_rate,
            queue_capacity=queue_capacity,
            batch_ingest=True,
        )
        self.shedder = LiraLoadShedder(
            self.config,
            reduction,
            queue_capacity=queue_capacity,
            engine="vector",
            incremental=incremental,
        )
        self.shedder.use_adaptive_throttle()
        self.shedder.throtloop.utilization_target = utilization_target
        self.shedder.throtloop.smoothing = throttle_smoothing
        self.network = BaseStationNetwork(
            place_uniform_stations(bounds, station_radius)
        )
        self.counters = ServiceCounters()
        self.plan: SheddingPlan | None = None
        self.plan_generated_t = 0.0
        self._trivial_plan_cache: SheddingPlan | None = None
        # Delta-broadcast state of the last install: the delta that
        # carried the previous plan to the current one (None = full
        # install), which stations actually saw new content (None =
        # all), and per-install encoded frame cache keyed by the
        # network version the frame was built for.
        self._last_delta: PlanDelta | None = None
        self._changed_stations: frozenset[int] | None = None
        self._plan_dirty = False
        self._frame_cache: dict[str, tuple[int, bytes]] = {}
        # FIFO of deferred acks: marks are monotone in append order
        # because enqueueing happens inline on the (single) event loop.
        self._pending: deque[_PendingAck] = deque()
        self._subscribers: list[_Subscriber] = []
        self._asyncio_server: asyncio.AbstractServer | None = None
        self._tasks: list[asyncio.Task] = []
        self._slow_callback_detector: sanitize.SlowCallbackDetector | None = None

    # ------------------------------------------------------------------
    # Synchronous core (socket-free; what the protocol handlers call)
    # ------------------------------------------------------------------

    def apply_ingest(
        self,
        t: float,
        node_ids: np.ndarray,
        positions: np.ndarray,
        velocities: np.ndarray,
        times: np.ndarray | None = None,
    ) -> IngestResult:
        """Apply one batch of reports; equivalent to ``receive_reports``.

        This is the entire server-side effect of an ``ingest`` frame, so
        tests can assert wire-path/direct-path equivalence against a
        plain :class:`MobileCQServer` without opening a socket.
        """
        queue = self.server.queue
        drops_before = queue.lifetime_dropped
        admitted = self.server.receive_reports(
            t, node_ids, positions, velocities, times=times
        )
        dropped = queue.lifetime_dropped - drops_before
        self.counters.ingest_frames += 1
        self.counters.reports_received += int(np.asarray(node_ids).size)
        return IngestResult(
            admitted=admitted,
            dropped=int(dropped),
            queue_length=len(queue),
            mark=queue.lifetime_enqueued if admitted else None,
        )

    def pump_once(self, dt: float) -> int:
        """Grant ``dt`` seconds of service capacity; returns processed count.

        The slowdown fault seam scales capacity exactly as the systems
        loop's tick path does; idle credit beyond one update is
        forgotten (a live server cannot bank capacity it did not use).
        """
        rate_factor = (
            self.faults.service_factor(self.clock()) if self.faults is not None else 1.0
        )
        processed = self.server.process(dt, rate_factor=rate_factor)
        if len(self.server.queue) == 0:
            self.server.clamp_service_credit()
        return processed

    def adapt_once(self) -> SheddingPlan:
        """One adaptation: measure load, step THROTLOOP, install a plan.

        Mirrors :meth:`repro.server.system.LiraSystem.adapt`, with the
        believed node state standing in for the simulator's ground
        truth — a live server only knows what was reported to it.
        """
        now = self.clock()
        # Under REPRO_SANITIZE=1 any hidden global-RNG draw in the
        # adaptation path raises instead of silently de-seeding runs.
        with sanitize.rng_discipline():
            measurement = self.server.take_load_measurement()
            if measurement.period > 0:
                # Routes through ThrotLoop.step(), which tolerates a
                # stalled μ <= 0 measurement (collapse to z_floor under
                # load, reopen when idle) instead of raising
                # mid-adaptation.
                self.shedder.observe_load(
                    measurement.arrival_rate, self.server.service_rate
                )
            plan: SheddingPlan | None = None
            if self.policy == "lira":
                plan = self._lira_plan(now)
            if plan is None:
                plan = self._trivial_plan()
            previous = self.plan
            delta: PlanDelta | None = None
            if self.incremental and previous is not None:
                if previous is plan:
                    # Unchanged content (the shedder returned the same
                    # object): the network and every subscriber already
                    # hold it — no install, nothing to push.
                    self.counters.plans_computed += 1
                    self._plan_dirty = False
                    return plan
                delta = previous.diff(plan)
            delivered = self.network.install_plan(plan, t=now, delta=delta)
            self._last_delta = delta
            # A delta install re-delivers only stations whose subset
            # changed; a full install re-delivers everyone (None =
            # no skipping).
            self._changed_stations = (
                frozenset(delivered) if delta is not None else None
            )
            self._plan_dirty = True
            self.plan = plan
            self.plan_generated_t = now
            self.counters.plans_computed += 1
            return plan

    def _lira_plan(self, now: float) -> SheddingPlan | None:
        """A region plan from believed state; ``None`` before any report."""
        table = self.server.table
        known = np.flatnonzero(table.known_mask)
        if known.size == 0:
            return None
        believed = table.predict(now)[known]
        # Clamp believed positions into bounds: extrapolating a stale
        # model can walk a node outside the monitoring region, and the
        # statistics grid ignores out-of-bounds samples entirely.
        believed[:, 0] = np.clip(believed[:, 0], self.bounds.x1, self.bounds.x2)
        believed[:, 1] = np.clip(believed[:, 1], self.bounds.y1, self.bounds.y2)
        vel = table.velocities[known]
        speeds = np.hypot(vel[:, 0], vel[:, 1])
        grid = StatisticsGrid.from_snapshot(
            self.bounds,
            self.config.resolved_alpha,
            believed,
            speeds,
            self.server.queries,
        )
        return self.shedder.adapt(grid)

    def _trivial_plan(self) -> SheddingPlan:
        """One region at Δ⊢ (no source throttling); memoized."""
        if self._trivial_plan_cache is None:
            region = RegionStats(rect=self.bounds, n=0.0, m=0.0, s=0.0)
            self._trivial_plan_cache = SheddingPlan.from_regions(
                bounds=self.bounds,
                regions=[region],
                thresholds=clamp_thresholds(
                    np.array([self.config.delta_min]), self.config
                ),
                resolution=1,
            )
        return self._trivial_plan_cache

    def stats_meta(self) -> dict:
        """The ``stats`` frame payload: one consistent snapshot."""
        queue = self.server.queue
        table = self.server.table
        return {
            "policy": self.policy,
            "z": self.shedder.current_z,
            "plan_version": self.network.version,
            "plan_regions": self.plan.num_regions if self.plan else 0,
            "queue_length": len(queue),
            "queue_capacity": queue.capacity,
            "drop_rate": queue.drop_rate(),
            "period_drop_rate": queue.period_drop_rate(),
            "lifetime_enqueued": queue.lifetime_enqueued,
            "lifetime_dropped": queue.lifetime_dropped,
            "lifetime_dequeued": queue.lifetime_dequeued,
            "updates_applied": table.updates_applied,
            "updates_discarded": table.updates_discarded,
            "ingest_frames": self.counters.ingest_frames,
            "reports_received": self.counters.reports_received,
            "acks_sent": self.counters.acks_sent,
            "plans_computed": self.counters.plans_computed,
            "plans_pushed": self.counters.plans_pushed,
            "delta_plans_pushed": self.counters.delta_plans_pushed,
            "plan_pushes_skipped": self.counters.plan_pushes_skipped,
            "plan_frames_encoded": self.counters.plan_frames_encoded,
            "plan_epoch": self.plan.epoch if self.plan is not None else 0,
            "plan_broadcast_bytes": self.network.total_broadcast_bytes,
            "subscribers": len(self._subscribers),
            "service_rate": self.server.service_rate,
        }

    # ------------------------------------------------------------------
    # Plan push
    # ------------------------------------------------------------------

    def _frame_meta(self) -> dict:
        return {
            "version": self.network.version,
            "generated_t": self.plan_generated_t,
            "z": self.shedder.current_z,
            "policy": self.policy,
        }

    def _full_plan_frame(self) -> bytes:
        """The full-plan broadcast frame, encoded once per installed plan.

        The cache is keyed by the network version the frame was built
        for — every install bumps it — so a fleet of N full-channel
        subscribers costs one ``SheddingPlan.to_dict`` serialization per
        adaptation, not N.
        """
        cached = self._frame_cache.get("plan")
        if cached is not None and cached[0] == self.network.version:
            return cached[1]
        meta = self._frame_meta()
        meta["plan"] = self.plan.to_dict()
        payload = encode_frame("plan", meta)
        self._frame_cache["plan"] = (self.network.version, payload)
        self.counters.plan_frames_encoded += 1
        return payload

    def _delta_plan_frame(self, delta: PlanDelta) -> bytes:
        """The delta broadcast frame, encoded once per installed plan."""
        cached = self._frame_cache.get("plan-delta")
        if cached is not None and cached[0] == self.network.version:
            return cached[1]
        meta = self._frame_meta()
        meta["delta"] = delta.to_dict()
        payload = encode_frame("plan-delta", meta)
        self._frame_cache["plan-delta"] = (self.network.version, payload)
        self.counters.plan_frames_encoded += 1
        return payload

    def _plan_frame(self, subscriber: _Subscriber) -> bytes | None:
        """Encode the current plan for one subscriber (None = nothing yet)."""
        if self.plan is None:
            return None
        if subscriber.station_id is None:
            return self._full_plan_frame()
        subset = self.network.subset_or_none(subscriber.station_id)
        meta = self._frame_meta()
        meta["station_id"] = subscriber.station_id
        meta["default_delta"] = self.config.delta_min
        if subset is None or not subset.regions:
            return encode_frame("plan-subset", meta)
        rects = np.array(
            [[r.rect.x1, r.rect.y1, r.rect.x2, r.rect.y2] for r in subset.regions],
            dtype=np.float64,
        )
        deltas = np.array([r.delta for r in subset.regions], dtype=np.float64)
        return encode_frame("plan-subset", meta, {"rects": rects, "deltas": deltas})

    def _push_plan(self) -> None:
        """Send the newest plan content to every live subscriber.

        Full-channel subscribers sitting at the delta's base epoch get
        the compact ``plan-delta`` frame; everyone else (fresh, lapsed,
        or after a geometry change) gets a full-plan resync.  Station
        subscribers whose subset the delta proved unchanged are skipped
        outright.  An adaptation that produced the identical plan object
        pushes nothing at all.
        """
        if self.plan is None or not self._subscribers:
            return
        if not self._plan_dirty:
            self.counters.plan_pushes_skipped += len(self._subscribers)
            return
        delta = self._last_delta
        live: list[_Subscriber] = []
        for subscriber in self._subscribers:
            if subscriber.writer.is_closing():
                continue
            live.append(subscriber)
            if subscriber.station_id is not None:
                if (
                    self._changed_stations is not None
                    and subscriber.station_id not in self._changed_stations
                ):
                    self.counters.plan_pushes_skipped += 1
                    continue
                payload = self._plan_frame(subscriber)
                if payload is not None:
                    subscriber.writer.write(payload)
                    self.counters.plans_pushed += 1
                continue
            if delta is not None and subscriber.epoch == delta.base_epoch:
                subscriber.writer.write(self._delta_plan_frame(delta))
                self.counters.delta_plans_pushed += 1
            else:
                subscriber.writer.write(self._full_plan_frame())
            subscriber.epoch = self.plan.epoch
            self.counters.plans_pushed += 1
        self._subscribers = live

    # ------------------------------------------------------------------
    # Background tasks
    # ------------------------------------------------------------------

    def _complete_acks(self) -> None:
        """Flush deferred acks whose reports have been applied."""
        done = self.server.queue.lifetime_dequeued
        while self._pending and self._pending[0].mark <= done:
            pending = self._pending.popleft()
            if pending.writer.is_closing():
                continue
            pending.meta["done_t"] = self.clock()
            pending.writer.write(encode_frame("ingest-ack", pending.meta))
            self.counters.acks_sent += 1

    async def _pump_loop(self) -> None:
        last = self.clock()
        while True:
            await asyncio.sleep(self.pump_period)
            now = self.clock()
            dt = max(0.0, now - last)
            last = now
            try:
                self.pump_once(dt)
                self._complete_acks()
            except Exception:
                logger.exception("service pump iteration failed")

    async def _adapt_loop(self) -> None:
        while True:
            await asyncio.sleep(self.adapt_period)
            try:
                self.adapt_once()
                self._push_plan()
            except Exception:
                logger.exception("adaptation iteration failed")

    # ------------------------------------------------------------------
    # Socket protocol
    # ------------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except FrameError as exc:
                    self.counters.protocol_errors += 1
                    writer.write(encode_frame("error", {"message": str(exc)}))
                    await writer.drain()
                    break
                if frame is None:
                    break
                self._dispatch(frame, writer)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._subscribers = [
                s for s in self._subscribers if s.writer is not writer
            ]
            writer.close()

    def _dispatch(self, frame: Frame, writer: asyncio.StreamWriter) -> None:
        if frame.kind == "ping":
            meta = dict(frame.meta)
            meta["server_t"] = self.clock()
            writer.write(encode_frame("pong", meta))
            return
        if frame.kind == "ingest":
            self._handle_ingest(frame, writer)
            return
        if frame.kind == "subscribe":
            station_id = frame.meta.get("station_id")
            subscriber = _Subscriber(
                writer=writer,
                station_id=int(station_id) if station_id is not None else None,
            )
            self._subscribers.append(subscriber)
            payload = self._plan_frame(subscriber)
            if payload is not None:
                writer.write(payload)
                if self.plan is not None:
                    subscriber.epoch = self.plan.epoch
                self.counters.plans_pushed += 1
            return
        if frame.kind == "stats":
            meta = self.stats_meta()
            meta["seq"] = frame.meta.get("seq")
            writer.write(encode_frame("stats-reply", meta))
            return
        self.counters.protocol_errors += 1
        writer.write(
            encode_frame("error", {"message": f"unknown frame kind {frame.kind!r}"})
        )

    def _handle_ingest(self, frame: Frame, writer: asyncio.StreamWriter) -> None:
        recv_t = self.clock()
        try:
            node_ids = np.asarray(frame.arrays["node_ids"], dtype=np.int64)
            positions = np.asarray(frame.arrays["positions"], dtype=np.float64)
            velocities = np.asarray(frame.arrays["velocities"], dtype=np.float64)
        except KeyError as exc:
            self.counters.protocol_errors += 1
            writer.write(
                encode_frame("error", {"message": f"ingest missing array {exc}"})
            )
            return
        times = frame.arrays.get("times")
        if positions.shape != (node_ids.size, 2) or velocities.shape != (
            node_ids.size,
            2,
        ):
            self.counters.protocol_errors += 1
            writer.write(
                encode_frame("error", {"message": "ingest array shape mismatch"})
            )
            return
        result = self.apply_ingest(
            recv_t,
            node_ids,
            positions,
            velocities,
            times=np.asarray(times, dtype=np.float64) if times is not None else None,
        )
        meta = {
            "seq": frame.meta.get("seq"),
            "send_t": frame.meta.get("send_t"),
            "recv_t": recv_t,
            "admitted": result.admitted,
            "dropped": result.dropped,
            "queue_length": result.queue_length,
        }
        if result.mark is None:
            meta["done_t"] = self.clock()
            writer.write(encode_frame("ingest-ack", meta))
            self.counters.acks_sent += 1
        else:
            self.counters.acks_deferred += 1
            self._pending.append(_PendingAck(writer=writer, meta=meta, mark=result.mark))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(
        self,
        path: str | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        """Bind (unix socket if ``path`` else TCP) and start the loops."""
        if self._asyncio_server is not None:
            raise RuntimeError("service already started")
        if path is not None:
            self._asyncio_server = await asyncio.start_unix_server(
                self._handle_conn, path=path
            )
        else:
            self._asyncio_server = await asyncio.start_server(
                self._handle_conn, host=host, port=port
            )
        if sanitize.enabled():
            self._slow_callback_detector = sanitize.SlowCallbackDetector(
                threshold_s=sanitize.slow_callback_threshold_s()
            )
            self._slow_callback_detector.install()
        self._tasks = [
            self._spawn_task(self._pump_loop(), name="lira-service-pump"),
            self._spawn_task(self._adapt_loop(), name="lira-service-adapt"),
        ]

    def _spawn_task(self, coro: Coroutine[Any, Any, None], name: str) -> asyncio.Task:
        """Create a background task whose failure is surfaced, not lost.

        A bare ``create_task`` whose handle dies with the method frame
        can be garbage-collected mid-flight, and an exception that kills
        the loop task would go unreported until interpreter exit.  The
        done-callback logs any non-cancellation death immediately
        (REP042).
        """
        task = asyncio.create_task(coro, name=name)
        task.add_done_callback(self._on_task_done)
        return task

    @staticmethod
    def _on_task_done(task: asyncio.Task) -> None:
        if task.cancelled():
            return
        exc = task.exception()
        if exc is not None:
            logger.error(
                "service background task %r died: %r", task.get_name(), exc
            )

    @property
    def bound_port(self) -> int | None:
        """The bound TCP port (None for unix sockets / before start)."""
        if self._asyncio_server is None:
            return None
        for sock in self._asyncio_server.sockets:
            name = sock.getsockname()
            if isinstance(name, tuple) and len(name) >= 2:
                return int(name[1])
        return None

    async def stop(self) -> None:
        """Cancel the loops and close the listening socket."""
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
            except Exception:
                # Already reported by _on_task_done; a dead pump must
                # not abort shutdown of the listener and its peer task.
                pass
        self._tasks = []
        if self._slow_callback_detector is not None:
            self._slow_callback_detector.uninstall()
            self._slow_callback_detector = None
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
            self._asyncio_server = None

    async def serve_forever(self) -> None:
        """Block until cancelled (the listener must be started)."""
        if self._asyncio_server is None:
            raise RuntimeError("call start() first")
        await self._asyncio_server.serve_forever()
