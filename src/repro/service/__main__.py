"""CLI: run one live LIRA service process.

::

    python -m repro.service --socket /tmp/lira.sock --policy lira \
        --n-nodes 400 --service-rate 1500 --queue-capacity 600

The scenario (bounds, query workload, LIRA parameters) is a pure
function of the flags, so a load generator launched with the same
values reconstructs the identical scenario on its side.  Prints one
``listening ...`` line once the socket is bound — process supervisors
(and the loadtest ``--spawn`` path) can wait for it.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import logging
import sys

from repro.service.service import ServiceConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a live LIRA mobile-CQ service endpoint.",
    )
    bind = parser.add_mutually_exclusive_group(required=True)
    bind.add_argument("--socket", help="unix socket path to bind")
    bind.add_argument(
        "--port",
        type=int,
        help="TCP port to bind on 127.0.0.1 (0 picks a free port)",
    )
    parser.add_argument("--policy", choices=("lira", "random-drop"), default="lira")
    parser.add_argument("--side", type=float, default=10_000.0)
    parser.add_argument("--n-nodes", type=int, default=400)
    parser.add_argument("--n-queries", type=int, default=20)
    parser.add_argument("--query-side", type=float, default=1_500.0)
    parser.add_argument("--workload-seed", type=int, default=7)
    parser.add_argument("--service-rate", type=float, default=1_500.0)
    parser.add_argument("--queue-capacity", type=int, default=600)
    parser.add_argument("--adapt-period", type=float, default=0.5)
    parser.add_argument("--pump-period", type=float, default=0.005)
    parser.add_argument("--station-radius", type=float, default=4_000.0)
    parser.add_argument("--regions", type=int, default=13, dest="l")
    parser.add_argument("--alpha", type=int, default=16)
    parser.add_argument("--delta-min", type=float, default=5.0)
    parser.add_argument("--delta-max", type=float, default=100.0)
    parser.add_argument(
        "--slowdown-prob",
        type=float,
        default=0.0,
        help="per-measurement probability a service slowdown episode starts",
    )
    parser.add_argument("--slowdown-factor", type=float, default=0.3)
    parser.add_argument("--slowdown-duration", type=float, default=0.0)
    parser.add_argument("--fault-seed", type=int, default=0)
    parser.add_argument(
        "--no-incremental",
        action="store_true",
        help="disable incremental adaptation (full recompute + full push)",
    )
    parser.add_argument("--log-level", default="WARNING")
    return parser


def config_from_args(args: argparse.Namespace) -> ServiceConfig:
    return ServiceConfig(
        side=args.side,
        n_nodes=args.n_nodes,
        n_queries=args.n_queries,
        query_side=args.query_side,
        workload_seed=args.workload_seed,
        service_rate=args.service_rate,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        adapt_period=args.adapt_period,
        pump_period=args.pump_period,
        station_radius=args.station_radius,
        l=args.l,
        alpha=args.alpha,
        delta_min=args.delta_min,
        delta_max=args.delta_max,
        slowdown_prob=args.slowdown_prob,
        slowdown_factor=args.slowdown_factor,
        slowdown_duration=args.slowdown_duration,
        fault_seed=args.fault_seed,
        incremental=not args.no_incremental,
    )


async def run(args: argparse.Namespace) -> None:
    service = config_from_args(args).build()
    if args.socket is not None:
        await service.start(path=args.socket)
        endpoint = args.socket
    else:
        await service.start(port=args.port)
        endpoint = f"127.0.0.1:{service.bound_port}"
    print(f"listening {endpoint} policy={service.policy}", flush=True)
    try:
        await service.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await service.stop()


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    logging.basicConfig(level=getattr(logging, args.log_level.upper(), logging.WARNING))
    with contextlib.suppress(KeyboardInterrupt):
        asyncio.run(run(args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
