"""Continual range queries.

The paper's workload consists of range CQs: axis-aligned squares whose
side length is drawn uniformly from ``[w/2, w]`` for a *side length
parameter* ``w``.  A query's result set is the set of mobile nodes whose
(known) position falls inside its rectangle.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Rect


@dataclass(frozen=True, slots=True)
class RangeQuery:
    """A continual range query over the monitoring space."""

    query_id: int
    rect: Rect

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        """Node ids (row indices of ``positions``) inside the query rectangle.

        ``positions`` has shape ``(n, 2)``.  Uses the same half-open
        containment convention as :class:`~repro.geo.Rect`.
        """
        positions = np.asarray(positions, dtype=np.float64)
        x, y = positions[:, 0], positions[:, 1]
        mask = (
            (x >= self.rect.x1)
            & (x < self.rect.x2)
            & (y >= self.rect.y1)
            & (y < self.rect.y2)
        )
        return np.flatnonzero(mask)


def evaluate_queries(
    queries: list[RangeQuery], positions: np.ndarray
) -> list[np.ndarray]:
    """Evaluate every query against one position snapshot.

    Returns one index array per query, in query order.  This brute-force
    helper is the reference implementation; the grid index in
    :mod:`repro.index` provides the fast path used by the server.
    """
    return [q.evaluate(positions) for q in queries]
