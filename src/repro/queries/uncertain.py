"""Uncertainty-aware range query evaluation.

Dead reckoning gives the server a *bounded* error: node i's true
position is within its inaccuracy threshold Δᵢ of the believed
position.  Because LIRA assigns every node a known Δᵢ (its region's
update throttler), results can carry guarantees instead of being
best-effort:

* **certain** members — believed position at least Δᵢ inside the query
  rectangle: the node is inside *no matter where it really is*;
* **possible** members — believed position within Δᵢ of the rectangle:
  the node *may* be inside.

Soundness (certain ⊆ true ⊆ possible) holds whenever the dead-reckoning
invariant holds, and is property-tested end-to-end against LIRA plans.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queries.range_query import RangeQuery


@dataclass(frozen=True)
class UncertainResult:
    """A query answer with membership guarantees."""

    certain: np.ndarray
    possible: np.ndarray

    @property
    def uncertain(self) -> np.ndarray:
        """Possible-but-not-certain members (the boundary band)."""
        return np.setdiff1d(self.possible, self.certain, assume_unique=True)

    @property
    def precision_floor(self) -> float:
        """Guaranteed lower bound on result precision: |certain|/|possible|."""
        if self.possible.size == 0:
            return 1.0
        return self.certain.size / self.possible.size


def evaluate_with_uncertainty(
    query: RangeQuery,
    believed_positions: np.ndarray,
    thresholds: np.ndarray,
) -> UncertainResult:
    """Evaluate a range query with per-node position uncertainty.

    ``believed_positions`` has shape ``(n, 2)`` (NaN rows = unknown
    nodes, excluded from ``certain`` but conservatively *included* in
    ``possible`` only if you pass them with infinite thresholds —
    normally unknown nodes simply do not participate).  ``thresholds``
    is the per-node Δ bound on ``|believed − true|``.
    """
    believed = np.asarray(believed_positions, dtype=np.float64)
    thresholds = np.broadcast_to(
        np.asarray(thresholds, dtype=np.float64), (len(believed),)
    )
    if np.any(thresholds < 0):
        raise ValueError("thresholds must be non-negative")
    rect = query.rect
    x, y = believed[:, 0], believed[:, 1]
    known = ~np.isnan(x)

    inside_margin = np.minimum(
        np.minimum(x - rect.x1, rect.x2 - x),
        np.minimum(y - rect.y1, rect.y2 - y),
    )
    certain = known & (inside_margin >= thresholds) & (inside_margin > 0)

    dx = np.maximum(np.maximum(rect.x1 - x, x - rect.x2), 0.0)
    dy = np.maximum(np.maximum(rect.y1 - y, y - rect.y2), 0.0)
    outside_distance = np.hypot(dx, dy)
    possible = known & (outside_distance <= thresholds) | (
        known & (inside_margin > 0)
    )

    return UncertainResult(
        certain=np.flatnonzero(certain),
        possible=np.flatnonzero(possible),
    )


def evaluate_all_with_uncertainty(
    queries: list[RangeQuery],
    believed_positions: np.ndarray,
    thresholds: np.ndarray,
) -> list[UncertainResult]:
    """Batch form of :func:`evaluate_with_uncertainty`."""
    return [
        evaluate_with_uncertainty(q, believed_positions, thresholds)
        for q in queries
    ]
