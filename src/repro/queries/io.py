"""Query workload persistence.

Workloads are part of an experiment's identity; saving them (alongside
the trace's ``.npz``) makes runs replayable and shareable.  Format is
plain JSON: one record per query with its id and rectangle.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.geo import Rect
from repro.queries.range_query import RangeQuery

FORMAT_VERSION = 1


def save_workload(queries: list[RangeQuery], path: str | Path) -> None:
    """Write a workload to a JSON file."""
    doc = {
        "format": "repro.queries",
        "version": FORMAT_VERSION,
        "queries": [
            {
                "id": q.query_id,
                "rect": [q.rect.x1, q.rect.y1, q.rect.x2, q.rect.y2],
            }
            for q in queries
        ],
    }
    Path(path).write_text(json.dumps(doc, indent=2))


def load_workload(path: str | Path) -> list[RangeQuery]:
    """Read a workload written by :func:`save_workload`.

    Validates the format marker and rectangle well-formedness so that a
    truncated or foreign file fails loudly rather than producing a
    silently wrong workload.
    """
    doc = json.loads(Path(path).read_text())
    if doc.get("format") != "repro.queries":
        raise ValueError(f"{path} is not a repro workload file")
    if doc.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported workload version {doc.get('version')!r} "
            f"(expected {FORMAT_VERSION})"
        )
    queries = []
    for record in doc["queries"]:
        x1, y1, x2, y2 = record["rect"]
        queries.append(RangeQuery(query_id=int(record["id"]), rect=Rect(x1, y1, x2, y2)))
    return queries
