"""Continual-query workload substrate (range CQs, spatial distributions)."""

from repro.queries.batch import BatchMeasurement, QueryEvalKernel, stack_bounds
from repro.queries.io import load_workload, save_workload
from repro.queries.range_query import RangeQuery, evaluate_queries
from repro.queries.uncertain import (
    UncertainResult,
    evaluate_all_with_uncertainty,
    evaluate_with_uncertainty,
)
from repro.queries.workload import QueryDistribution, generate_workload

__all__ = [
    "BatchMeasurement",
    "QueryDistribution",
    "QueryEvalKernel",
    "RangeQuery",
    "UncertainResult",
    "evaluate_queries",
    "stack_bounds",
    "evaluate_all_with_uncertainty",
    "evaluate_with_uncertainty",
    "generate_workload",
    "load_workload",
    "save_workload",
]
