"""Query workload generation.

Implements the paper's three spatial query distributions:

* **Proportional** — query centers follow the mobile-node distribution;
* **Inverse** — query centers follow the *inverse* of the node
  distribution (queries concentrate where nodes are scarce);
* **Random** — query centers are uniform over the monitoring region.

Side lengths are drawn uniformly from ``[w/2, w]`` where ``w`` is the
side length parameter (paper default 1000 m).
"""

from __future__ import annotations

import enum

import numpy as np

from repro.geo import Point, Rect
from repro.queries.range_query import RangeQuery


class QueryDistribution(enum.Enum):
    """Spatial distribution of query centers (paper Section 4.2)."""

    PROPORTIONAL = "proportional"
    INVERSE = "inverse"
    RANDOM = "random"


def generate_workload(
    bounds: Rect,
    n_queries: int,
    side_length: float,
    distribution: QueryDistribution = QueryDistribution.PROPORTIONAL,
    node_positions: np.ndarray | None = None,
    seed: int = 7,
    density_grid_cells: int = 32,
) -> list[RangeQuery]:
    """Generate ``n_queries`` range CQs over ``bounds``.

    ``node_positions`` (shape ``(n, 2)``) is required for the
    Proportional and Inverse distributions, which are defined relative
    to the node density.  The Inverse distribution is realized by
    histogramming nodes on a ``density_grid_cells``-square grid and
    sampling cells with probability proportional to the *complement* of
    their node count.
    """
    if n_queries < 0:
        raise ValueError("n_queries must be non-negative")
    if side_length <= 0:
        raise ValueError("side_length must be positive")
    rng = np.random.default_rng(seed)

    if distribution is QueryDistribution.RANDOM:
        centers = np.column_stack(
            [
                rng.uniform(bounds.x1, bounds.x2, size=n_queries),
                rng.uniform(bounds.y1, bounds.y2, size=n_queries),
            ]
        )
    elif distribution is QueryDistribution.PROPORTIONAL:
        centers = _proportional_centers(bounds, n_queries, node_positions, rng)
    elif distribution is QueryDistribution.INVERSE:
        centers = _inverse_centers(
            bounds, n_queries, node_positions, rng, density_grid_cells
        )
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown distribution: {distribution}")

    sides = rng.uniform(side_length / 2.0, side_length, size=n_queries)
    queries = []
    for i in range(n_queries):
        rect = Rect.from_center(Point(centers[i, 0], centers[i, 1]), float(sides[i]))
        queries.append(RangeQuery(query_id=i, rect=rect))
    return queries


def _require_nodes(node_positions: np.ndarray | None) -> np.ndarray:
    if node_positions is None or len(node_positions) == 0:
        raise ValueError(
            "node_positions are required for node-density-driven distributions"
        )
    return np.asarray(node_positions, dtype=np.float64)


def _proportional_centers(
    bounds: Rect, n_queries: int, node_positions: np.ndarray | None,
    rng: np.random.Generator,
) -> np.ndarray:
    """Centers sampled at node positions with small jitter."""
    nodes = _require_nodes(node_positions)
    picks = rng.integers(0, len(nodes), size=n_queries)
    jitter_scale = 0.01 * min(bounds.width, bounds.height)
    centers = nodes[picks] + rng.normal(0.0, jitter_scale, size=(n_queries, 2))
    centers[:, 0] = np.clip(centers[:, 0], bounds.x1, bounds.x2)
    centers[:, 1] = np.clip(centers[:, 1], bounds.y1, bounds.y2)
    return centers


def _inverse_centers(
    bounds: Rect,
    n_queries: int,
    node_positions: np.ndarray | None,
    rng: np.random.Generator,
    grid_cells: int,
) -> np.ndarray:
    """Centers sampled from cells weighted by the inverse node density."""
    nodes = _require_nodes(node_positions)
    counts, x_edges, y_edges = np.histogram2d(
        nodes[:, 0],
        nodes[:, 1],
        bins=grid_cells,
        range=[[bounds.x1, bounds.x2], [bounds.y1, bounds.y2]],
    )
    # Complement weighting: emptier cells get higher probability, but no
    # cell gets zero, so queries still appear (rarely) over dense areas.
    weights = (counts.max() - counts) + 1.0
    probs = (weights / weights.sum()).ravel()
    picks = rng.choice(grid_cells * grid_cells, size=n_queries, p=probs)
    ix, iy = np.unravel_index(picks, (grid_cells, grid_cells))
    xs = rng.uniform(x_edges[ix], x_edges[ix + 1])
    ys = rng.uniform(y_edges[iy], y_edges[iy + 1])
    return np.column_stack([xs, ys])
