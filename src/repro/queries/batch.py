"""Vectorized batch evaluation of range CQs — the simulation hot path.

The measurement loop behind every accuracy figure evaluates each range
CQ against all node positions per tick.  Doing that one query at a time
(:meth:`~repro.queries.range_query.RangeQuery.evaluate` plus two
``np.setdiff1d`` calls per query) costs O(ticks x queries x nodes) in
Python-loop overhead and sorting.  :class:`QueryEvalKernel` precomputes
per-query rectangle arrays (a stacked ``(Q, 4)`` bounds matrix) and a
cell->query bucket index over the statistics grid, then evaluates every
query against a position snapshot in one vectorized pass:

* candidate pruning by cell bucket (a CSR map from grid cells to the
  queries overlapping them), then
* a boolean containment matrix ``(Q, N)``, with missing/extra counts
  derived by mask arithmetic instead of per-query set differences.

Containment uses the exact half-open convention of
:class:`~repro.geo.Rect` (``x1 <= x < x2`` and ``y1 <= y < y2``), so
kernel results are always identical to the brute-force reference
``evaluate_queries``.  NaN coordinates compare false on every bound and
are therefore never contained, matching ``RangeQuery.evaluate``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Rect
from repro.queries.range_query import RangeQuery

#: Above this many (query, node) pairs the dense containment matrix is
#: built via cell-bucket candidate pruning instead of full broadcasting.
_PRUNE_PAIR_THRESHOLD = 1 << 22


def stack_bounds(queries: list[RangeQuery]) -> np.ndarray:
    """Stacked query rectangles, shape ``(Q, 4)`` as ``x1, y1, x2, y2``."""
    bounds = np.empty((len(queries), 4), dtype=np.float64)
    for i, query in enumerate(queries):
        r = query.rect
        bounds[i, 0] = r.x1
        bounds[i, 1] = r.y1
        bounds[i, 2] = r.x2
        bounds[i, 3] = r.y2
    return bounds


@dataclass(frozen=True)
class BatchMeasurement:
    """Per-query accuracy measurements of one (truth, believed) snapshot pair.

    All arrays have shape ``(Q,)``.  ``containment_error`` is the paper's
    per-tick E_rr^C contribution ``(|missing| + |extra|) / |true set|``
    (NaN where the true set is empty); ``position_error`` is the mean
    distance between believed and true positions over the believed result
    set (NaN where that set is empty).  The boolean masks say which
    entries are valid, so accumulators can stay branch-free.
    """

    containment_error: np.ndarray
    has_true: np.ndarray
    position_error: np.ndarray
    has_believed: np.ndarray


class QueryEvalKernel:
    """Evaluates a fixed query workload against position snapshots, batched.

    Parameters:
        queries: the workload; order defines row order of all outputs.
        bounds: monitoring-space bounds for the cell bucket index
            (typically the trace / statistics-grid bounds).  ``None``
            disables pruning; the dense path is used unconditionally.
        cells_per_side: bucket grid resolution (the statistics grid's
            alpha when piggybacking on it).
    """

    def __init__(
        self,
        queries: list[RangeQuery],
        bounds: Rect | None = None,
        cells_per_side: int = 64,
    ) -> None:
        self.queries = list(queries)
        self.bounds = bounds
        self.rects = stack_bounds(self.queries)
        self._scratch: np.ndarray | None = None
        # Column views reused every tick; [:, None] makes them broadcast
        # against a (N,) coordinate vector into the (Q, N) matrix.
        self._x1 = self.rects[:, 0][:, None]
        self._y1 = self.rects[:, 1][:, None]
        self._x2 = self.rects[:, 2][:, None]
        self._y2 = self.rects[:, 3][:, None]
        if bounds is not None:
            if cells_per_side < 1:
                raise ValueError("cells_per_side must be >= 1")
            self.cells_per_side = cells_per_side
            self._cell_w = bounds.width / cells_per_side
            self._cell_h = bounds.height / cells_per_side
            self._build_buckets()
        else:
            self.cells_per_side = 0
            self._bucket_offsets = None
            self._bucket_queries = None

    @property
    def num_queries(self) -> int:
        return len(self.queries)

    # ------------------------------------------------------------------
    # Cell -> query bucket index
    # ------------------------------------------------------------------

    def _query_cell_ranges(self) -> np.ndarray:
        """Inclusive cell-index ranges ``(Q, 4)`` as i_lo, i_hi, j_lo, j_hi.

        Ranges are clamped into the grid, so queries sticking out of (or
        lying entirely outside) the bounds map onto the edge cells —
        exactly where out-of-bounds positions clamp to.  The bucket is a
        conservative superset: exact containment runs on candidates.
        """
        cells = self.cells_per_side
        b = self.bounds
        with np.errstate(invalid="ignore"):
            i_lo = np.floor((self.rects[:, 0] - b.x1) / self._cell_w)
            i_hi = np.ceil((self.rects[:, 2] - b.x1) / self._cell_w) - 1.0
            j_lo = np.floor((self.rects[:, 1] - b.y1) / self._cell_h)
            j_hi = np.ceil((self.rects[:, 3] - b.y1) / self._cell_h) - 1.0
        ranges = np.stack([i_lo, i_hi, j_lo, j_hi], axis=1)
        np.nan_to_num(ranges, copy=False)
        ranges = np.clip(ranges, 0, cells - 1).astype(np.int64)
        # Degenerate (zero-width) queries still occupy their lo cell.
        ranges[:, 1] = np.maximum(ranges[:, 1], ranges[:, 0])
        ranges[:, 3] = np.maximum(ranges[:, 3], ranges[:, 2])
        return ranges

    def _build_buckets(self) -> None:
        """CSR map flat cell id -> query ids whose rectangle overlaps it."""
        cells = self.cells_per_side
        n_cells = cells * cells
        ranges = self._query_cell_ranges()
        counts = np.zeros(n_cells, dtype=np.int64)
        entries: list[tuple[int, int]] = []
        for qi in range(len(self.queries)):
            i_lo, i_hi, j_lo, j_hi = ranges[qi]
            for ci in range(i_lo, i_hi + 1):
                base = ci * cells
                for cj in range(j_lo, j_hi + 1):
                    entries.append((base + cj, qi))
        offsets = np.zeros(n_cells + 1, dtype=np.int64)
        if entries:
            flat = np.array([e[0] for e in entries], dtype=np.int64)
            qids = np.array([e[1] for e in entries], dtype=np.int64)
            order = np.argsort(flat, kind="stable")
            flat, qids = flat[order], qids[order]
            counts = np.bincount(flat, minlength=n_cells)
            offsets[1:] = np.cumsum(counts)
            self._bucket_queries = qids
        else:
            self._bucket_queries = np.empty(0, dtype=np.int64)
        self._bucket_offsets = offsets

    def cell_indices(self, positions: np.ndarray) -> np.ndarray:
        """Flat bucket-cell ids for positions ``(N, 2)``, clamped to edges.

        NaN coordinates land in cell 0; pruning treats that cell's bucket
        as candidates and exact containment rejects NaN anyway.
        """
        cells = self.cells_per_side
        with np.errstate(invalid="ignore"):
            ix = np.floor((positions[:, 0] - self.bounds.x1) / self._cell_w)
            iy = np.floor((positions[:, 1] - self.bounds.y1) / self._cell_h)
        ix = np.nan_to_num(ix, nan=0.0, posinf=cells - 1, neginf=0.0)
        iy = np.nan_to_num(iy, nan=0.0, posinf=cells - 1, neginf=0.0)
        ix = np.clip(ix, 0, cells - 1).astype(np.int64)
        iy = np.clip(iy, 0, cells - 1).astype(np.int64)
        return ix * cells + iy

    def queries_for_cell(self, ci: int, cj: int) -> np.ndarray:
        """Ids (workload row indices) of queries overlapping bucket cell."""
        if self._bucket_offsets is None:
            raise ValueError("kernel was built without bounds; no bucket index")
        flat = ci * self.cells_per_side + cj
        lo, hi = self._bucket_offsets[flat], self._bucket_offsets[flat + 1]
        return self._bucket_queries[lo:hi]

    # ------------------------------------------------------------------
    # Containment
    # ------------------------------------------------------------------

    def containment(self, positions: np.ndarray, prune: bool | None = None) -> np.ndarray:
        """Boolean containment matrix ``(Q, N)``.

        ``out[q, n]`` is true iff node ``n`` lies inside query ``q`` under
        the half-open convention.  ``prune=None`` picks the dense or
        bucket-pruned construction automatically by problem size.
        """
        positions = np.asarray(positions, dtype=np.float64)
        n = positions.shape[0]
        q = len(self.queries)
        if prune is None:
            prune = (
                self._bucket_offsets is not None
                and q * n > _PRUNE_PAIR_THRESHOLD
            )
        if prune and self._bucket_offsets is None:
            raise ValueError("kernel was built without bounds; cannot prune")
        if not prune:
            x, y = positions[:, 0], positions[:, 1]
            # In-place ufuncs with a reusable scratch buffer: one output
            # allocation per call instead of seven temporaries.  The
            # comparisons are unchanged, so the matrix is bit-identical
            # to the naive chained expression.
            out = np.empty((q, n), dtype=bool)
            scratch = self._scratch
            if scratch is None or scratch.shape != out.shape:
                scratch = self._scratch = np.empty_like(out)
            np.greater_equal(x, self._x1, out=out)
            np.less(x, self._x2, out=scratch)
            out &= scratch
            np.greater_equal(y, self._y1, out=scratch)
            out &= scratch
            np.less(y, self._y2, out=scratch)
            out &= scratch
            return out
        out = np.zeros((q, n), dtype=bool)
        if n == 0 or q == 0:
            return out
        q_idx, n_idx = self._candidate_pairs(positions)
        if q_idx.size == 0:
            return out
        px = positions[n_idx, 0]
        py = positions[n_idx, 1]
        rect = self.rects[q_idx]
        inside = (
            (px >= rect[:, 0])
            & (px < rect[:, 2])
            & (py >= rect[:, 1])
            & (py < rect[:, 3])
        )
        out[q_idx[inside], n_idx[inside]] = True
        return out

    def _candidate_pairs(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """(query, node) candidate pairs from the cell buckets, vectorized.

        For each node, every query bucketed in the node's cell is a
        candidate.  The ragged gather walks the CSR arrays without a
        Python loop.
        """
        flat = self.cell_indices(positions)
        starts = self._bucket_offsets[flat]
        counts = self._bucket_offsets[flat + 1] - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        n_idx = np.repeat(np.arange(positions.shape[0], dtype=np.int64), counts)
        # Offset of each pair within its node's bucket slice.
        first_of_node = np.repeat(np.cumsum(counts) - counts, counts)
        within = np.arange(total, dtype=np.int64) - first_of_node
        q_idx = self._bucket_queries[np.repeat(starts, counts) + within]
        return q_idx, n_idx

    def evaluate(self, positions: np.ndarray, prune: bool | None = None) -> list[np.ndarray]:
        """Per-query sorted node-id arrays — drop-in for ``evaluate_queries``."""
        matrix = self.containment(positions, prune=prune)
        return [np.flatnonzero(row) for row in matrix]

    # ------------------------------------------------------------------
    # Accuracy measurement (the simulation hot path)
    # ------------------------------------------------------------------

    def measure(
        self, true_positions: np.ndarray, believed: np.ndarray
    ) -> BatchMeasurement:
        """One tick of accuracy accounting, all queries at once.

        ``true_positions`` are ground truth, ``believed`` the server's
        dead-reckoned view where never-reported nodes are NaN.  Matches
        the brute-force loop bit for bit: containment errors come from
        integer mask arithmetic (symmetric difference == missing + extra),
        and per-query position errors average exactly the same compacted
        distance arrays the reference implementation builds.
        """
        true_positions = np.asarray(true_positions, dtype=np.float64)
        believed = np.asarray(believed, dtype=np.float64)
        # Unknown nodes cannot appear in any result rectangle.
        believed_eval = np.where(np.isnan(believed), np.inf, believed)
        # One stacked containment pass covers both snapshots: elementwise
        # comparisons are independent per position row, so the split
        # halves equal two separate calls exactly.
        n = true_positions.shape[0]
        stacked = self.containment(
            np.concatenate((true_positions, believed_eval), axis=0)
        )
        true_mask = stacked[:, :n]
        believed_mask = stacked[:, n:]

        true_size = np.count_nonzero(true_mask, axis=1)
        sym_diff = np.count_nonzero(true_mask ^ believed_mask, axis=1)
        has_true = true_size > 0
        with np.errstate(invalid="ignore", divide="ignore"):
            containment_error = np.where(
                has_true, sym_diff / np.maximum(true_size, 1), np.nan
            )

        believed_size = np.count_nonzero(believed_mask, axis=1)
        has_believed = believed_size > 0
        position_error = np.full(len(self.queries), np.nan)
        if has_believed.any():
            # NaN rows (never-reported nodes) yield NaN distances but are
            # never selected by believed_mask, so the warning is noise.
            with np.errstate(invalid="ignore"):
                distances = np.linalg.norm(believed - true_positions, axis=1)
            for qi in np.flatnonzero(has_believed):
                # Mean over the compacted per-query distance array — the
                # same reduction order as the brute-force reference, so
                # results match bitwise.
                position_error[qi] = float(distances[believed_mask[qi]].mean())
        return BatchMeasurement(
            containment_error=containment_error,
            has_true=has_true,
            position_error=position_error,
            has_believed=has_believed,
        )
