"""Incremental continual-query evaluation.

The paper's introduction names the two costly components of mobile CQ
processing: position updates and **query re-evaluations**.  This engine
is the re-evaluation side: it maintains every installed range CQ's
result set incrementally — each position update touches only the
queries covering the node's old and new positions (via the
:class:`~repro.cq.query_index.QueryIndex`) — and emits *result deltas*,
the add/remove notifications a CQ system streams to subscribers.

Also supports **moving queries** (ranges anchored to a mobile node,
e.g. "taxis within 1 km of me"), re-anchored whenever their focal
node's believed position changes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Point, Rect
from repro.queries import RangeQuery
from repro.cq.query_index import QueryIndex


@dataclass(frozen=True, slots=True)
class MovingRangeQuery:
    """A square range CQ anchored to a mobile node."""

    query_id: int
    anchor_node: int
    side: float

    def materialize(self, anchor_position: Point) -> RangeQuery:
        """The concrete range query at the anchor's current position."""
        return RangeQuery(
            query_id=self.query_id,
            rect=Rect.from_center(anchor_position, self.side),
        )


@dataclass(slots=True)
class ResultDelta:
    """An incremental change to one query's result set."""

    time: float
    query_id: int
    added: tuple[int, ...] = ()
    removed: tuple[int, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed


@dataclass
class EngineStats:
    """Work counters for cost accounting."""

    updates_processed: int = 0
    deltas_emitted: int = 0
    memberships_changed: int = 0
    moving_query_moves: int = 0


class IncrementalCQEngine:
    """Maintains all CQ result sets under a stream of position updates.

    Positions fed to :meth:`apply_update` are the server's *believed*
    positions (reported model positions); the engine is agnostic to
    where they come from.  Static queries are installed up front or via
    :meth:`install`; moving queries via :meth:`install_moving`.
    """

    def __init__(
        self,
        bounds: Rect,
        n_nodes: int,
        queries: list[RangeQuery] | None = None,
        cells_per_side: int = 32,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("n_nodes must be positive")
        self.bounds = bounds
        self.n_nodes = n_nodes
        self.index = QueryIndex(bounds, cells_per_side)
        self._results: dict[int, set[int]] = {}
        self._node_memberships: list[set[int]] = [set() for _ in range(n_nodes)]
        self._positions = np.full((n_nodes, 2), np.nan)
        self._moving: dict[int, MovingRangeQuery] = {}
        self._anchored_by: dict[int, list[int]] = {}
        self.stats = EngineStats()
        for query in queries or []:
            self.install(query)

    # ------------------------------------------------------------------
    # Query installation
    # ------------------------------------------------------------------

    def install(self, query: RangeQuery) -> ResultDelta:
        """Install a static range CQ; returns its initial result delta."""
        self.index.add(query)
        members = self._scan_members(query.rect)
        self._results[query.query_id] = members
        for node_id in members:
            self._node_memberships[node_id].add(query.query_id)
        delta = ResultDelta(
            time=0.0, query_id=query.query_id, added=tuple(sorted(members))
        )
        if not delta.is_empty:
            self.stats.deltas_emitted += 1
        return delta

    def install_moving(self, query: MovingRangeQuery) -> ResultDelta:
        """Install a moving range CQ anchored to a node."""
        if query.anchor_node >= self.n_nodes:
            raise ValueError(f"anchor node {query.anchor_node} out of range")
        self._moving[query.query_id] = query
        self._anchored_by.setdefault(query.anchor_node, []).append(query.query_id)
        anchor = self._positions[query.anchor_node]
        center = (
            Point(float(anchor[0]), float(anchor[1]))
            if not np.isnan(anchor[0])
            else self.bounds.center
        )
        return self.install(query.materialize(center))

    def uninstall(self, query_id: int) -> None:
        """Remove a query (static or moving) and clear its memberships."""
        self.index.remove(query_id)
        for node_id in self._results.pop(query_id, set()):
            self._node_memberships[node_id].discard(query_id)
        moving = self._moving.pop(query_id, None)
        if moving is not None:
            self._anchored_by[moving.anchor_node].remove(query_id)

    # ------------------------------------------------------------------
    # Update processing
    # ------------------------------------------------------------------

    def apply_update(self, t: float, node_id: int, x: float, y: float) -> list[ResultDelta]:
        """Process one position update; returns the result deltas it causes."""
        if not (0 <= node_id < self.n_nodes):
            raise ValueError(f"node {node_id} out of range")
        self.stats.updates_processed += 1
        self._positions[node_id] = (x, y)
        deltas = self._reconcile_node(t, node_id, x, y)
        # Moving queries anchored to this node follow it.
        for query_id in self._anchored_by.get(node_id, ()):
            deltas.extend(self._move_query(t, query_id, Point(x, y)))
        return deltas

    def _reconcile_node(
        self, t: float, node_id: int, x: float, y: float
    ) -> list[ResultDelta]:
        old = self._node_memberships[node_id]
        new = self.index.queries_at(x, y)
        if new == old:
            return []
        deltas = []
        for query_id in old - new:
            self._results[query_id].discard(node_id)
            deltas.append(ResultDelta(time=t, query_id=query_id, removed=(node_id,)))
        for query_id in new - old:
            self._results[query_id].add(node_id)
            deltas.append(ResultDelta(time=t, query_id=query_id, added=(node_id,)))
        self.stats.memberships_changed += len(old ^ new)
        self.stats.deltas_emitted += len(deltas)
        self._node_memberships[node_id] = new
        return deltas

    def _move_query(self, t: float, query_id: int, center: Point) -> list[ResultDelta]:
        moving = self._moving[query_id]
        fresh = moving.materialize(center)
        self.index.replace(fresh)
        self.stats.moving_query_moves += 1
        old_members = self._results[query_id]
        new_members = self._scan_members(fresh.rect)
        if new_members == old_members:
            return []
        added = tuple(sorted(new_members - old_members))
        removed = tuple(sorted(old_members - new_members))
        for node_id in removed:
            self._node_memberships[node_id].discard(query_id)
        for node_id in added:
            self._node_memberships[node_id].add(query_id)
        self._results[query_id] = new_members
        self.stats.memberships_changed += len(added) + len(removed)
        self.stats.deltas_emitted += 1
        return [ResultDelta(time=t, query_id=query_id, added=added, removed=removed)]

    def refresh(self, t: float, believed_positions: np.ndarray) -> list[ResultDelta]:
        """Bulk re-reconciliation from a full believed-position snapshot.

        Used for periodic refresh under dead reckoning, where positions
        drift between reports.  Equivalent to applying one update per
        node with a changed position.
        """
        believed = np.asarray(believed_positions, dtype=np.float64)
        if believed.shape != (self.n_nodes, 2):
            raise ValueError("believed_positions must have shape (n_nodes, 2)")
        deltas = []
        for node_id in range(self.n_nodes):
            x, y = believed[node_id]
            if np.isnan(x):
                continue
            if (
                self._positions[node_id, 0] == x
                and self._positions[node_id, 1] == y
            ):
                continue
            deltas.extend(self.apply_update(t, node_id, float(x), float(y)))
        return deltas

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def result(self, query_id: int) -> frozenset[int]:
        """The current result set of one query."""
        return frozenset(self._results[query_id])

    def all_results(self) -> dict[int, frozenset[int]]:
        return {qid: frozenset(m) for qid, m in self._results.items()}

    def _scan_members(self, rect: Rect) -> set[int]:
        x, y = self._positions[:, 0], self._positions[:, 1]
        mask = (
            ~np.isnan(x)
            & (x >= rect.x1)
            & (x < rect.x2)
            & (y >= rect.y1)
            & (y < rect.y2)
        )
        return set(map(int, np.flatnonzero(mask)))
