"""Query indexing: a grid index over installed query rectangles.

Mobile CQ systems invert the classic evaluation direction: instead of
asking "which objects are in this query?" per query, each incoming
position update asks "which queries cover this position?" (Prabhakar et
al.'s Query Indexing [12], also the core of SINA [11]).  A uniform grid
over the query rectangles answers that in O(candidates-per-cell).
"""

from __future__ import annotations

from repro.geo import Rect
from repro.queries import RangeQuery


class QueryIndex:
    """Uniform grid mapping cells to the queries overlapping them."""

    def __init__(self, bounds: Rect, cells_per_side: int = 32) -> None:
        if cells_per_side < 1:
            raise ValueError("cells_per_side must be >= 1")
        self.bounds = bounds
        self.cells_per_side = cells_per_side
        self._cell_w = bounds.width / cells_per_side
        self._cell_h = bounds.height / cells_per_side
        self._cells: dict[tuple[int, int], set[int]] = {}
        self._queries: dict[int, RangeQuery] = {}
        self.candidate_checks = 0

    def __len__(self) -> int:
        return len(self._queries)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._queries

    def _cell_range(self, rect: Rect) -> tuple[int, int, int, int]:
        i_lo = int((rect.x1 - self.bounds.x1) / self._cell_w)
        i_hi = int((rect.x2 - self.bounds.x1) / self._cell_w)
        j_lo = int((rect.y1 - self.bounds.y1) / self._cell_h)
        j_hi = int((rect.y2 - self.bounds.y1) / self._cell_h)
        def clamp(v: int) -> int:
            return min(max(v, 0), self.cells_per_side - 1)

        return clamp(i_lo), clamp(i_hi), clamp(j_lo), clamp(j_hi)

    def add(self, query: RangeQuery) -> None:
        """Install a query; its id must not already be present."""
        if query.query_id in self._queries:
            raise KeyError(f"query {query.query_id} already installed")
        self._queries[query.query_id] = query
        i_lo, i_hi, j_lo, j_hi = self._cell_range(query.rect)
        for i in range(i_lo, i_hi + 1):
            for j in range(j_lo, j_hi + 1):
                self._cells.setdefault((i, j), set()).add(query.query_id)

    def remove(self, query_id: int) -> RangeQuery:
        """Uninstall a query by id; raises ``KeyError`` if absent."""
        query = self._queries.pop(query_id)
        i_lo, i_hi, j_lo, j_hi = self._cell_range(query.rect)
        for i in range(i_lo, i_hi + 1):
            for j in range(j_lo, j_hi + 1):
                cell = self._cells.get((i, j))
                if cell is not None:
                    cell.discard(query_id)
                    if not cell:
                        del self._cells[(i, j)]
        return query

    def replace(self, query: RangeQuery) -> None:
        """Atomically move a query (used by moving queries)."""
        if query.query_id in self._queries:
            self.remove(query.query_id)
        self.add(query)

    def get(self, query_id: int) -> RangeQuery:
        return self._queries[query_id]

    def all_queries(self) -> list[RangeQuery]:
        return list(self._queries.values())

    def queries_at(self, x: float, y: float) -> set[int]:
        """Ids of queries whose rectangle contains point ``(x, y)``."""
        i = int((x - self.bounds.x1) / self._cell_w)
        j = int((y - self.bounds.y1) / self._cell_h)
        i = min(max(i, 0), self.cells_per_side - 1)
        j = min(max(j, 0), self.cells_per_side - 1)
        hits = set()
        for query_id in self._cells.get((i, j), ()):
            self.candidate_checks += 1
            if self._queries[query_id].rect.contains_xy(x, y):
                hits.add(query_id)
        return hits
