"""Incremental CQ evaluation: query indexing, result deltas, moving queries."""

from repro.cq.engine import (
    EngineStats,
    IncrementalCQEngine,
    MovingRangeQuery,
    ResultDelta,
)
from repro.cq.query_index import QueryIndex

__all__ = [
    "EngineStats",
    "IncrementalCQEngine",
    "MovingRangeQuery",
    "QueryIndex",
    "ResultDelta",
]
