"""repro: a reproduction of LIRA (Gedik, Liu, Wu, Yu — ICDE 2007).

LIRA is a lightweight, region-aware update load shedder for mobile
continual-query systems.  This package implements the full system —
the three LIRA algorithms (GRIDREDUCE, GREEDYINCREMENT, THROTLOOP), the
baseline policies the paper compares against, and every substrate the
evaluation needs (road networks, vehicle traces, dead reckoning, range
CQ workloads, a CQ server with a bounded input queue, base stations).

Quickstart::

    from repro import LiraConfig, LiraPolicy, build_scenario
    from repro.sim import Simulation, SimulationConfig

    scenario = build_scenario(n_nodes=1000)
    policy = LiraPolicy(LiraConfig(l=100, alpha=64), scenario.reduction)
    result = Simulation(
        scenario.trace, scenario.queries, policy, SimulationConfig(z=0.5)
    ).run()
    print(result.mean_containment_error)
"""

from repro.core import (
    AnalyticReduction,
    LiraConfig,
    LiraLoadShedder,
    PiecewiseLinearReduction,
    SheddingPlan,
    StatisticsGrid,
    ThrotLoop,
    greedy_increment,
    grid_reduce,
    measure_reduction_from_trace,
    validate_plan,
)
from repro.faults import FaultInjector, FaultSpec
from repro.server import LiraSystem
from repro.shedding import (
    LiraGridPolicy,
    LiraPolicy,
    RandomDropPolicy,
    SafeRegionPolicy,
    UniformDeltaPolicy,
)
from repro.sim import Simulation, SimulationConfig, build_scenario, make_policies

__version__ = "1.0.0"

__all__ = [
    "AnalyticReduction",
    "FaultInjector",
    "FaultSpec",
    "LiraConfig",
    "LiraGridPolicy",
    "LiraLoadShedder",
    "LiraPolicy",
    "LiraSystem",
    "PiecewiseLinearReduction",
    "RandomDropPolicy",
    "SafeRegionPolicy",
    "SheddingPlan",
    "Simulation",
    "SimulationConfig",
    "StatisticsGrid",
    "ThrotLoop",
    "UniformDeltaPolicy",
    "build_scenario",
    "greedy_increment",
    "grid_reduce",
    "make_policies",
    "measure_reduction_from_trace",
    "validate_plan",
    "__version__",
]
