"""Fault injection for the server–network loop (see :mod:`repro.faults.channel`)."""

from repro.faults.channel import (
    DELAYED,
    DELIVER,
    LOSSLESS,
    LOST,
    FaultCounters,
    FaultInjector,
    FaultSpec,
)

__all__ = [
    "DELAYED",
    "DELIVER",
    "LOSSLESS",
    "LOST",
    "FaultCounters",
    "FaultInjector",
    "FaultSpec",
]
