"""Deterministic, seedable fault injection for the server–network loop.

LIRA's premise is graceful behaviour under adverse conditions, yet a
lossless simulation never exercises the failure modes a real deployment
sees.  This module models them explicitly, as a :class:`FaultInjector`
wrapped around the three seams of the systems loop
(:class:`~repro.server.system.LiraSystem`):

* **uplink** (mobile node → server): position-update messages can be
  lost, delayed (arriving whole ticks later, carrying their original
  report timestamp), or reordered within a delivery batch;
* **downlink** (server → base stations): shedding-plan broadcasts can be
  lost (the station keeps serving its *stale* region subset) or delayed
  (the subset installs at a later tick);
* **server**: transient service-rate dips (a slowdown episode scales the
  processing capacity for a while) and node churn (nodes leave the
  system and rejoin later).

Everything is driven by per-seam :class:`numpy.random.Generator`
streams derived from one seed, so a fault scenario is exactly
reproducible — two runs with the same spec and seed produce identical
message fates, identical counters, and identical system statistics.
The all-zero :class:`FaultSpec` is a true no-op: the injector passes
batches through untouched and draws nothing from any stream, so a
system wired with a null injector behaves bit-identically to one with
no injector at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

_PROBABILITY_FIELDS = (
    "uplink_loss",
    "uplink_delay",
    "uplink_reorder",
    "downlink_loss",
    "downlink_delay",
    "slowdown_prob",
    "churn_leave",
    "churn_rejoin",
)


@dataclass(frozen=True)
class FaultSpec:
    """Declarative description of one fault scenario.

    All probabilities are per message (uplink), per broadcast
    (downlink), per tick (slowdown), or per node per tick (churn).
    Delay ranges are in seconds; delays are drawn uniformly from them.
    """

    #: Probability each node→server update message is lost in transit.
    uplink_loss: float = 0.0
    #: Probability each surviving update message is delayed.
    uplink_delay: float = 0.0
    #: Delay drawn uniformly from this range (seconds) for delayed updates.
    uplink_delay_range: tuple[float, float] = (10.0, 30.0)
    #: Probability a tick's delivery batch is shuffled out of order.
    uplink_reorder: float = 0.0
    #: Probability each per-station plan broadcast is lost (the station
    #: keeps its previous — stale — region subset).
    downlink_loss: float = 0.0
    #: Probability each surviving plan broadcast is delayed.
    downlink_delay: float = 0.0
    #: Delay drawn uniformly from this range (seconds) for delayed broadcasts.
    downlink_delay_range: tuple[float, float] = (10.0, 30.0)
    #: Per-tick probability that a server slowdown episode starts.
    slowdown_prob: float = 0.0
    #: Service-rate multiplier while a slowdown episode is active.
    slowdown_factor: float = 0.3
    #: Duration (seconds) of a slowdown episode; 0 covers a single tick.
    slowdown_duration: float = 0.0
    #: Per-tick probability an active node leaves (stops reporting).
    churn_leave: float = 0.0
    #: Per-tick probability an absent node rejoins.
    churn_rejoin: float = 0.25

    def __post_init__(self) -> None:
        for name in _PROBABILITY_FIELDS:
            value = getattr(self, name)
            if not (0.0 <= value <= 1.0):
                raise ValueError(f"{name} must be a probability in [0, 1]")
        for name in ("uplink_delay_range", "downlink_delay_range"):
            lo, hi = getattr(self, name)
            if lo < 0 or hi < lo:
                raise ValueError(f"{name} must satisfy 0 <= lo <= hi")
        if not (0.0 < self.slowdown_factor <= 1.0):
            raise ValueError("slowdown_factor must be in (0, 1]")
        if self.slowdown_duration < 0:
            raise ValueError("slowdown_duration must be non-negative")

    @property
    def uplink_enabled(self) -> bool:
        return (
            self.uplink_loss > 0
            or self.uplink_delay > 0
            or self.uplink_reorder > 0
        )

    @property
    def downlink_enabled(self) -> bool:
        return self.downlink_loss > 0 or self.downlink_delay > 0

    @property
    def churn_enabled(self) -> bool:
        return self.churn_leave > 0

    @property
    def is_null(self) -> bool:
        """True when this spec injects no faults at all."""
        return not (
            self.uplink_enabled
            or self.downlink_enabled
            or self.churn_enabled
            or self.slowdown_prob > 0
        )


#: Downlink fates returned by :meth:`FaultInjector.downlink_fate`.
DELIVER = "deliver"
LOST = "lost"
DELAYED = "delayed"


@dataclass
class FaultCounters:
    """Cumulative fault accounting, surfaced through ``SystemStats``."""

    uplink_sent: int = 0
    uplink_lost: int = 0
    uplink_delayed: int = 0
    uplink_delivered: int = 0
    uplink_reordered_batches: int = 0
    downlink_broadcasts: int = 0
    downlink_lost: int = 0
    downlink_delayed: int = 0
    slow_ticks: int = 0
    departures: int = 0
    rejoins: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f: getattr(self, f) for f in self.__dataclass_fields__}


class FaultInjector:
    """Seedable fault source for every seam of the systems loop.

    One injector serves one :class:`~repro.server.system.LiraSystem`.
    Each seam draws from its own RNG stream (derived from ``seed``), so
    enabling downlink faults does not perturb the uplink's random
    choices — fault dimensions compose without cross-contamination.
    """

    def __init__(self, spec: FaultSpec | None = None, seed: int = 0) -> None:
        self.spec = spec or FaultSpec()
        self.seed = seed
        root = np.random.SeedSequence(seed)
        uplink_seq, downlink_seq, server_seq, churn_seq = root.spawn(4)
        self._uplink_rng = np.random.default_rng(uplink_seq)
        self._downlink_rng = np.random.default_rng(downlink_seq)
        self._server_rng = np.random.default_rng(server_seq)
        self._churn_rng = np.random.default_rng(churn_seq)
        self.counters = FaultCounters()
        #: In-flight delayed uplink messages, struct-of-arrays:
        #: (arrival_t, seq, send_t, node_id, position, velocity).
        #: Maturity order is (arrival_t, seq) ascending — identical to
        #: the min-heap of per-message tuples this buffer replaces.
        self._flight_arrival = np.empty(0, dtype=np.float64)
        self._flight_seq = np.empty(0, dtype=np.int64)
        self._flight_send_t = np.empty(0, dtype=np.float64)
        self._flight_ids = np.empty(0, dtype=np.int64)
        self._flight_pos = np.empty((0, 2), dtype=np.float64)
        self._flight_vel = np.empty((0, 2), dtype=np.float64)
        self._seq = 0
        self._slow_until = -np.inf
        self._active: np.ndarray | None = None

    # ------------------------------------------------------------------
    # Uplink: node -> server update messages
    # ------------------------------------------------------------------

    def uplink(
        self,
        t: float,
        node_ids: np.ndarray,
        positions: np.ndarray,
        velocities: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
        """Transmit one tick's reports; return what arrives by time ``t``.

        Returns ``(node_ids, positions, velocities, times)`` of the
        messages delivered this tick — the surviving non-delayed part of
        the new batch plus any previously delayed messages whose arrival
        time has matured.  ``times`` carries each message's original
        *report* timestamp (``None`` means "all at ``t``", the lossless
        fast path).
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        self.counters.uplink_sent += int(node_ids.size)
        spec = self.spec
        if not spec.uplink_enabled:
            self.counters.uplink_delivered += int(node_ids.size)
            return node_ids, positions, velocities, None

        n = int(node_ids.size)
        keep = np.ones(n, dtype=bool)
        if n and spec.uplink_loss > 0:
            lost = self._uplink_rng.random(n) < spec.uplink_loss
            self.counters.uplink_lost += int(lost.sum())
            keep &= ~lost
        delayed = np.zeros(n, dtype=bool)
        if n and spec.uplink_delay > 0:
            delayed = keep & (self._uplink_rng.random(n) < spec.uplink_delay)
            n_delayed = int(delayed.sum())
            self.counters.uplink_delayed += n_delayed
            lo, hi = spec.uplink_delay_range
            arrivals = t + self._uplink_rng.uniform(lo, hi, size=n_delayed)
            if n_delayed:
                held = np.flatnonzero(delayed)
                self._flight_arrival = np.concatenate(
                    [self._flight_arrival, arrivals]
                )
                self._flight_seq = np.concatenate(
                    [
                        self._flight_seq,
                        np.arange(self._seq, self._seq + n_delayed, dtype=np.int64),
                    ]
                )
                self._flight_send_t = np.concatenate(
                    [self._flight_send_t, np.full(n_delayed, t, dtype=np.float64)]
                )
                self._flight_ids = np.concatenate(
                    [self._flight_ids, node_ids[held]]
                )
                self._flight_pos = np.concatenate(
                    [self._flight_pos, np.asarray(positions, dtype=np.float64)[held]]
                )
                self._flight_vel = np.concatenate(
                    [self._flight_vel, np.asarray(velocities, dtype=np.float64)[held]]
                )
                self._seq += n_delayed
        immediate = keep & ~delayed

        mature = self._flight_arrival <= t
        if mature.any():
            order = np.lexsort(
                (self._flight_seq[mature], self._flight_arrival[mature])
            )
            matured_ids = self._flight_ids[mature][order]
            matured_pos = self._flight_pos[mature][order]
            matured_vel = self._flight_vel[mature][order]
            matured_times = self._flight_send_t[mature][order]
            still = ~mature
            self._flight_arrival = self._flight_arrival[still]
            self._flight_seq = self._flight_seq[still]
            self._flight_send_t = self._flight_send_t[still]
            self._flight_ids = self._flight_ids[still]
            self._flight_pos = self._flight_pos[still]
            self._flight_vel = self._flight_vel[still]
        else:
            matured_ids = np.empty(0, dtype=np.int64)
            matured_pos = np.empty((0, 2), dtype=np.float64)
            matured_vel = np.empty((0, 2), dtype=np.float64)
            matured_times = np.empty(0, dtype=np.float64)

        ids = np.concatenate([matured_ids, node_ids[immediate]])
        pos = np.concatenate(
            [matured_pos, np.asarray(positions, dtype=np.float64)[immediate]]
        )
        vel = np.concatenate(
            [matured_vel, np.asarray(velocities, dtype=np.float64)[immediate]]
        )
        times = np.concatenate(
            [matured_times, np.full(int(immediate.sum()), t, dtype=np.float64)]
        )
        if (
            ids.size > 1
            and spec.uplink_reorder > 0
            and self._uplink_rng.random() < spec.uplink_reorder
        ):
            order = self._uplink_rng.permutation(ids.size)
            ids, pos, vel, times = ids[order], pos[order], vel[order], times[order]
            self.counters.uplink_reordered_batches += 1
        self.counters.uplink_delivered += int(ids.size)
        return ids, pos, vel, times

    @property
    def uplink_in_flight(self) -> int:
        """Delayed update messages not yet delivered."""
        return int(self._flight_ids.size)

    # ------------------------------------------------------------------
    # Downlink: server -> base-station plan broadcasts
    # ------------------------------------------------------------------

    def downlink_fate(self, station_id: int) -> tuple[str, float]:
        """Fate of one per-station plan broadcast.

        Returns ``(DELIVER, 0.0)``, ``(LOST, 0.0)``, or ``(DELAYED, d)``
        with ``d`` the delivery delay in seconds.
        """
        self.counters.downlink_broadcasts += 1
        spec = self.spec
        if not spec.downlink_enabled:
            return DELIVER, 0.0
        if spec.downlink_loss > 0 and self._downlink_rng.random() < spec.downlink_loss:
            self.counters.downlink_lost += 1
            return LOST, 0.0
        if spec.downlink_delay > 0 and self._downlink_rng.random() < spec.downlink_delay:
            lo, hi = spec.downlink_delay_range
            self.counters.downlink_delayed += 1
            return DELAYED, float(self._downlink_rng.uniform(lo, hi))
        return DELIVER, 0.0

    # ------------------------------------------------------------------
    # Server slowdowns
    # ------------------------------------------------------------------

    def service_factor(self, t: float) -> float:
        """Service-rate multiplier for the tick at time ``t``."""
        spec = self.spec
        if spec.slowdown_prob <= 0:
            return 1.0
        if t < self._slow_until:
            self.counters.slow_ticks += 1
            return spec.slowdown_factor
        if self._server_rng.random() < spec.slowdown_prob:
            self._slow_until = t + spec.slowdown_duration
            self.counters.slow_ticks += 1
            return spec.slowdown_factor
        return 1.0

    # ------------------------------------------------------------------
    # Node churn
    # ------------------------------------------------------------------

    def churn_step(self, n_nodes: int) -> np.ndarray | None:
        """Advance churn one tick; returns the active mask (or ``None``).

        ``None`` means churn is disabled and every node is active — the
        caller can skip masking entirely.
        """
        spec = self.spec
        if not spec.churn_enabled:
            return None
        if self._active is None or self._active.size != n_nodes:
            self._active = np.ones(n_nodes, dtype=bool)
        draws = self._churn_rng.random(n_nodes)
        leaving = self._active & (draws < spec.churn_leave)
        rejoining = ~self._active & (draws < spec.churn_rejoin)
        self.counters.departures += int(leaving.sum())
        self.counters.rejoins += int(rejoining.sum())
        self._active = (self._active & ~leaving) | rejoining
        return self._active

    @property
    def active_mask(self) -> np.ndarray | None:
        """The current churn mask (``None`` when churn is disabled)."""
        return self._active


@dataclass(frozen=True)
class _Lossless:
    """Marker for documentation: the default channel is simply ``None``.

    The systems loop treats ``faults=None`` (or a null-spec injector) as
    a perfect channel; this sentinel exists so call sites can spell the
    intent explicitly as ``LOSSLESS``.
    """

    name: str = field(default="lossless")


#: The perfect channel: no loss, no delay, no reordering, no churn.
LOSSLESS = _Lossless()
