"""The update-reduction function ``f(Δ)`` and its derivative-rate ``r(Δ)``.

``f(Δ)`` gives the number of position updates received when all nodes use
inaccuracy threshold Δ, *relative to* Δ = Δ⊢ (so ``f(Δ⊢) = 1`` and ``f``
is non-increasing).  Paper Figure 1 measures it empirically: steep decay
near Δ⊢ flattening to a linear tail near Δ⊣.

Three implementations:

* :class:`PiecewiseLinearReduction` — κ linear segments.  This is the
  approximation under which GREEDYINCREMENT is provably optimal
  (Theorem 3.1); its segment size is the greedy increment c_Δ.
* :class:`AnalyticReduction` — a closed-form hyperbolic-plus-linear
  model of the Figure 1 shape, for fast experimentation.
* :func:`measure_reduction_from_trace` — the empirical route: dead-reckon
  a trace at sampled Δ values and interpolate (this regenerates Fig 1).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.trace.trace import Trace


class ReductionFunction(ABC):
    """Relative update volume as a function of the inaccuracy threshold.

    Contract: ``f`` is defined on ``[delta_min, delta_max]``, with
    ``f(delta_min) = 1`` and ``f`` non-increasing.  ``r`` is the negative
    right-derivative (the *rate of decrease*), used in update gains.
    """

    def __init__(self, delta_min: float, delta_max: float) -> None:
        if delta_min < 0 or delta_max <= delta_min:
            raise ValueError("require 0 <= delta_min < delta_max")
        self.delta_min = delta_min
        self.delta_max = delta_max

    @abstractmethod
    def f(self, delta: float) -> float:
        """Relative number of updates at threshold ``delta``."""

    @abstractmethod
    def r(self, delta: float) -> float:
        """Rate of decrease ``-df/dΔ`` at ``delta`` (right-derivative)."""

    def _check_domain(self, delta: float) -> float:
        if not (self.delta_min - 1e-9 <= delta <= self.delta_max + 1e-9):
            raise ValueError(
                f"delta={delta} outside [{self.delta_min}, {self.delta_max}]"
            )
        return min(max(delta, self.delta_min), self.delta_max)

    def delta_for_fraction(self, z: float) -> float:
        """Smallest Δ with ``f(Δ) <= z`` (Δ⊣ if no such Δ exists).

        This solves the single-region throttler problem: minimizing
        ``m·Δ`` subject to the budget is achieved at the smallest
        feasible Δ because the objective is increasing in Δ.

        Results are memoized per instance: GRIDREDUCE's CALCERRGAIN asks
        for the same ``z`` once per explored hierarchy node, which made
        this bisection the second-hottest call of the adapt step.
        """
        cache: dict[float, float] = self.__dict__.setdefault(
            "_delta_for_fraction_cache", {}
        )
        hit = cache.get(z)
        if hit is not None:
            return hit
        if z >= self.f(self.delta_min):
            result = self.delta_min
        elif self.f(self.delta_max) > z:
            result = self.delta_max
        else:
            lo, hi = self.delta_min, self.delta_max
            for _ in range(80):
                mid = (lo + hi) / 2.0
                if self.f(mid) <= z:
                    hi = mid
                else:
                    lo = mid
            result = hi
        cache[z] = result
        return result

    def piecewise(self, n_segments: int) -> "PiecewiseLinearReduction":
        """Discretize into a κ-segment piecewise-linear approximation."""
        knots = np.linspace(self.delta_min, self.delta_max, n_segments + 1)
        values = np.array([self.f(float(k)) for k in knots])
        return PiecewiseLinearReduction(knots, values)


class PiecewiseLinearReduction(ReductionFunction):
    """Non-increasing piecewise-linear ``f`` on evenly spaced knots.

    ``knots`` must be evenly spaced from Δ⊢ to Δ⊣; ``values`` are the
    corresponding ``f`` samples, normalized so ``f(Δ⊢) = 1``.  Any
    accidental increase in the samples (possible with noisy empirical
    measurements) is flattened by a running-minimum pass to preserve the
    non-increasing contract.
    """

    def __init__(self, knots: np.ndarray, values: np.ndarray) -> None:
        knots = np.asarray(knots, dtype=np.float64)
        values = np.asarray(values, dtype=np.float64)
        if knots.ndim != 1 or knots.size < 2 or knots.shape != values.shape:
            raise ValueError("knots and values must be 1-D arrays of equal size >= 2")
        gaps = np.diff(knots)
        if np.any(gaps <= 0) or not np.allclose(gaps, gaps[0]):
            raise ValueError("knots must be strictly increasing and evenly spaced")
        if values[0] <= 0:
            raise ValueError("f(delta_min) must be positive")
        super().__init__(float(knots[0]), float(knots[-1]))
        self.knots = knots
        self.values = np.minimum.accumulate(values / values[0])
        self.segment_size = float(gaps[0])
        # Scalar hot-path caches.  ``f``/``r`` are called ~10^5 times per
        # adapt step from GREEDYINCREMENT's inner loop with scalar
        # arguments; per-segment rates are constants, and plain-float
        # lists avoid numpy scalar-indexing overhead.  Values are the
        # exact same doubles the array expressions produce, so results
        # are bit-identical.
        self._rates = (
            (self.values[:-1] - self.values[1:]) / self.segment_size
        ).tolist()
        self._knots_list = self.knots.tolist()
        self._values_list = self.values.tolist()
        self._n_segments = self.knots.size - 1

    @property
    def n_segments(self) -> int:
        """Number of linear segments κ."""
        return self._n_segments

    def _segment_index(self, delta: float) -> int:
        idx = int((delta - self.delta_min) / self.segment_size)
        last = self._n_segments - 1
        if idx < 0:
            return 0
        return idx if idx < last else last

    def f(self, delta: float) -> float:
        lo, hi = self.delta_min, self.delta_max
        if not (lo - 1e-9 <= delta <= hi + 1e-9):
            raise ValueError(f"delta={delta} outside [{lo}, {hi}]")
        if delta < lo:
            delta = lo
        elif delta > hi:
            delta = hi
        i = self._segment_index(delta)
        values = self._values_list
        t = (delta - self._knots_list[i]) / self.segment_size
        return values[i] + t * (values[i + 1] - values[i])

    def r(self, delta: float) -> float:
        lo, hi = self.delta_min, self.delta_max
        if not (lo - 1e-9 <= delta <= hi + 1e-9):
            raise ValueError(f"delta={delta} outside [{lo}, {hi}]")
        if delta >= hi:
            return self._rates[-1]
        idx = int((delta - lo) / self.segment_size)
        last = self._n_segments - 1
        if idx < 0:
            idx = 0
        elif idx > last:
            idx = last
        return self._rates[idx]


class AnalyticReduction(ReductionFunction):
    """Closed-form model of the Figure 1 reduction curve.

    ``f(Δ) = w·(Δ⊢/Δ)^p + (1−w)·(1 − β·(Δ−Δ⊢)/(Δ⊣−Δ⊢))``

    The hyperbolic term produces the steep decay near Δ⊢ (dead
    reckoning's update rate falls roughly inversely with the allowed
    deviation for linear-ish motion); the linear term produces the fixed
    slope the paper observes as Δ approaches Δ⊣.  Defaults are fitted to
    the qualitative shape of Figure 1 (Δ⊢=5 m, Δ⊣=100 m).
    """

    def __init__(
        self,
        delta_min: float = 5.0,
        delta_max: float = 100.0,
        hyperbolic_weight: float = 0.7,
        hyperbolic_power: float = 1.0,
        linear_drop: float = 0.9,
    ) -> None:
        super().__init__(delta_min, delta_max)
        if not (0.0 <= hyperbolic_weight <= 1.0):
            raise ValueError("hyperbolic_weight must be in [0, 1]")
        if not (0.0 <= linear_drop <= 1.0):
            raise ValueError("linear_drop must be in [0, 1]")
        if hyperbolic_power <= 0:
            raise ValueError("hyperbolic_power must be positive")
        self.w = hyperbolic_weight
        self.p = hyperbolic_power
        self.beta = linear_drop

    def f(self, delta: float) -> float:
        delta = self._check_domain(delta)
        span = self.delta_max - self.delta_min
        hyper = (self.delta_min / delta) ** self.p if delta > 0 else 1.0
        linear = 1.0 - self.beta * (delta - self.delta_min) / span
        return self.w * hyper + (1.0 - self.w) * linear

    def r(self, delta: float) -> float:
        delta = self._check_domain(delta)
        span = self.delta_max - self.delta_min
        hyper_rate = self.p * (self.delta_min**self.p) / (delta ** (self.p + 1))
        linear_rate = self.beta / span
        return self.w * hyper_rate + (1.0 - self.w) * linear_rate


def measure_reduction_from_trace(
    trace: Trace,
    delta_min: float = 5.0,
    delta_max: float = 100.0,
    n_samples: int = 20,
) -> PiecewiseLinearReduction:
    """Measure ``f(Δ)`` empirically from a trace (regenerates Figure 1).

    Runs dead reckoning over the whole trace for ``n_samples`` evenly
    spaced thresholds and counts the reports each produces; the counts,
    normalized by the count at Δ⊢, interpolate into a piecewise-linear
    reduction function.  The first tick's mandatory reports (model
    initialization) are excluded from the counts since they occur at
    every threshold equally.
    """
    from repro.motion import DeadReckoningFleet

    if n_samples < 2:
        raise ValueError("n_samples must be >= 2")
    knots = np.linspace(delta_min, delta_max, n_samples)
    counts = np.empty(n_samples, dtype=np.float64)
    for k, delta in enumerate(knots):
        fleet = DeadReckoningFleet(trace.num_nodes)
        fleet.set_thresholds(float(delta))
        for tick in range(trace.num_ticks):
            fleet.observe(tick * trace.dt, trace.positions[tick], trace.velocities[tick])
        counts[k] = fleet.total_reports - trace.num_nodes  # exclude initial reports
    counts = np.maximum(counts, 1.0)
    return PiecewiseLinearReduction(knots, counts)
