"""LIRA core: the paper's contribution.

Exports the three algorithms (GRIDREDUCE, GREEDYINCREMENT, THROTLOOP),
the statistics grid they operate on, the update-reduction function
models, and the orchestrating :class:`LiraLoadShedder`.
"""

from repro.core.config import LiraConfig, auto_alpha
from repro.core.diagnostics import render_density_map, render_plan_heatmap
from repro.core.gridreduce import (
    PartitioningResult,
    calc_err_gain,
    effective_region_count,
    grid_reduce,
    uniform_partitioning,
)
from repro.core.greedy import GreedyResult, RegionStats, greedy_increment
from repro.core.greedy_vector import greedy_increment_batch, greedy_increment_vector
from repro.core.incremental import (
    IncrementalAdaptSession,
    IncrementalGridReduceCache,
)
from repro.core.plan import (
    PlanDelta,
    PlanEpochMismatch,
    SheddingPlan,
    SheddingRegion,
    clamp_thresholds,
)
from repro.core.quadtree import RegionHierarchy, RegionNode
from repro.core.reduction import (
    AnalyticReduction,
    PiecewiseLinearReduction,
    ReductionFunction,
    measure_reduction_from_trace,
)
from repro.core.shedder import AdaptationReport, LiraLoadShedder
from repro.core.statistics_grid import StatisticsGrid
from repro.core.throtloop import ThrotLoop
from repro.core.validation import PlanValidationReport, validate_plan

__all__ = [
    "AdaptationReport",
    "AnalyticReduction",
    "GreedyResult",
    "IncrementalAdaptSession",
    "IncrementalGridReduceCache",
    "LiraConfig",
    "LiraLoadShedder",
    "PartitioningResult",
    "PlanDelta",
    "PlanEpochMismatch",
    "PiecewiseLinearReduction",
    "PlanValidationReport",
    "ReductionFunction",
    "RegionHierarchy",
    "RegionNode",
    "RegionStats",
    "SheddingPlan",
    "SheddingRegion",
    "StatisticsGrid",
    "ThrotLoop",
    "auto_alpha",
    "calc_err_gain",
    "clamp_thresholds",
    "effective_region_count",
    "greedy_increment",
    "greedy_increment_batch",
    "greedy_increment_vector",
    "grid_reduce",
    "measure_reduction_from_trace",
    "render_density_map",
    "render_plan_heatmap",
    "uniform_partitioning",
    "validate_plan",
]
