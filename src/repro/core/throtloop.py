"""THROTLOOP: adaptive setting of the throttle fraction z (Section 3.4).

The controller observes the position-update input queue and adjusts the
throttle fraction so that the update arrival rate λ matches what the
server can process.  Under an M/M/1 model, keeping the *average* queue
length within a maximum queue size B requires utilization
``ρ = λ/μ <= 1 − 1/B``; THROTLOOP divides the current z by the
normalized utilization ``u = ρ / (1 − 1/B)`` each period:

    z ← min(1, z_prev / u)

so overload (u > 1) shrinks the budget and slack (u < 1) grows it back
toward 1.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

logger = logging.getLogger(__name__)


@dataclass
class ThrotLoop:
    """The throttle-fraction feedback controller.

    ``queue_capacity`` is B, the maximum input-queue size.  ``z_floor``
    guards against a single pathological measurement collapsing the
    budget to zero (the paper's experiments never drive z below ~0.25,
    where all alternatives converge anyway).  ``reopen_factor`` bounds
    how fast the budget reopens after a period with *no* arrivals, where
    the control law is undefined — the symmetric guard against a single
    empty measurement whipsawing z fully open.
    """

    queue_capacity: int
    z: float = 1.0
    z_floor: float = 0.01
    smoothing: float | None = None
    reopen_factor: float = 2.0
    history: list[float] = field(default_factory=list)
    _smoothed_utilization: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.queue_capacity < 2:
            raise ValueError("queue_capacity B must be >= 2")
        if not (0.0 < self.z <= 1.0):
            raise ValueError("initial z must be in (0, 1]")
        if not (0.0 < self.z_floor <= 1.0):
            raise ValueError("z_floor must be in (0, 1]")
        if self.smoothing is not None and not (0.0 < self.smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1] (or None)")
        if self.reopen_factor <= 1.0:
            raise ValueError("reopen_factor must be > 1")

    @property
    def target_utilization(self) -> float:
        """The stability threshold ``1 − 1/B``."""
        return 1.0 - 1.0 / self.queue_capacity

    def step(self, arrival_rate: float, service_rate: float) -> float:
        """One periodic adjustment from measured λ and μ; returns new z."""
        if service_rate <= 0:
            raise ValueError("service_rate must be positive")
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        return self.step_utilization(arrival_rate / service_rate)

    def step_utilization(self, utilization: float) -> float:
        """One periodic adjustment from measured utilization ρ = λ/μ.

        With ``smoothing`` set (EWMA weight β on the new sample — an
        extension beyond the paper), a single noisy measurement cannot
        whipsaw the budget; β = 1 or ``None`` is the paper's raw control
        law.
        """
        if utilization < 0:
            raise ValueError("utilization must be non-negative")
        if self.smoothing is not None:
            if self._smoothed_utilization is None:
                self._smoothed_utilization = utilization
            else:
                self._smoothed_utilization = (
                    self.smoothing * utilization
                    + (1.0 - self.smoothing) * self._smoothed_utilization
                )
            utilization = self._smoothed_utilization
        u = utilization / self.target_utilization
        previous = self.z
        if u <= 0:
            # No arrivals at all: the law z/u is undefined, but snapping
            # the budget fully open would whipsaw — one empty measurement
            # period (a lossy uplink, a churn dip) and the next overload
            # period re-sheds from scratch.  Reopen gradually instead,
            # bounded by reopen_factor per period.
            self.z = min(1.0, self.z * self.reopen_factor)
        else:
            self.z = min(1.0, max(self.z_floor, self.z / u))
        if self.z < previous:
            logger.debug(
                "throttle tightened: rho=%.3f -> z %.3f -> %.3f",
                utilization, previous, self.z,
            )
        self.history.append(self.z)
        return self.z

    def reset(self) -> None:
        """Return to the initial fully open budget (z = 1)."""
        self.z = 1.0
        self.history.clear()
        self._smoothed_utilization = None
