"""THROTLOOP: adaptive setting of the throttle fraction z (Section 3.4).

The controller observes the position-update input queue and adjusts the
throttle fraction so that the update arrival rate λ matches what the
server can process.  Under an M/M/1 model, keeping the *average* queue
length within a maximum queue size B requires utilization
``ρ = λ/μ <= 1 − 1/B``; THROTLOOP divides the current z by the
normalized utilization ``u = ρ / (1 − 1/B)`` each period:

    z ← min(1, z_prev / u)

so overload (u > 1) shrinks the budget and slack (u < 1) grows it back
toward 1.
"""

from __future__ import annotations

import logging
import math
from dataclasses import dataclass, field

logger = logging.getLogger(__name__)


@dataclass
class ThrotLoop:
    """The throttle-fraction feedback controller.

    ``queue_capacity`` is B, the maximum input-queue size.  ``z_floor``
    guards against a single pathological measurement collapsing the
    budget to zero (the paper's experiments never drive z below ~0.25,
    where all alternatives converge anyway).  ``reopen_factor`` bounds
    how fast the budget reopens after a period with *no* arrivals, where
    the control law is undefined — the symmetric guard against a single
    empty measurement whipsawing z fully open.

    ``utilization_target`` optionally overrides the derived ``1 − 1/B``
    target.  The paper's target only *stabilizes* the queue at whatever
    length it already has (λ ≈ μ leaves a full queue full forever); a
    deployment with a latency objective sets e.g. 0.8 so sustained
    headroom exists to drain backlog after an overload episode.
    """

    queue_capacity: int
    z: float = 1.0
    z_floor: float = 0.01
    smoothing: float | None = None
    reopen_factor: float = 2.0
    utilization_target: float | None = None
    history: list[float] = field(default_factory=list)
    _smoothed_utilization: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.queue_capacity < 2:
            raise ValueError("queue_capacity B must be >= 2")
        if not (0.0 < self.z <= 1.0):
            raise ValueError("initial z must be in (0, 1]")
        if not (0.0 < self.z_floor <= 1.0):
            raise ValueError("z_floor must be in (0, 1]")
        if self.smoothing is not None and not (0.0 < self.smoothing <= 1.0):
            raise ValueError("smoothing must be in (0, 1] (or None)")
        if self.reopen_factor <= 1.0:
            raise ValueError("reopen_factor must be > 1")
        if self.utilization_target is not None and not (
            0.0 < self.utilization_target <= 1.0
        ):
            raise ValueError("utilization_target must be in (0, 1] (or None)")

    @property
    def target_utilization(self) -> float:
        """The stability threshold: ``1 − 1/B``, unless overridden."""
        if self.utilization_target is not None:
            return self.utilization_target
        return 1.0 - 1.0 / self.queue_capacity

    def step(self, arrival_rate: float, service_rate: float) -> float:
        """One periodic adjustment from measured λ and μ; returns new z.

        ``service_rate <= 0`` is a measured condition, not a caller bug:
        a live server can report μ = 0 over a stalled period.  It maps
        to the same utilization semantics as
        :attr:`~repro.server.cq_server.LoadMeasurement.utilization` —
        infinitely utilized under any load (the budget collapses to
        ``z_floor``), idle at zero load (the gradual-reopen path) — so
        the control loop rides through instead of crashing.
        """
        if arrival_rate < 0:
            raise ValueError("arrival_rate must be non-negative")
        if service_rate <= 0:
            utilization = float("inf") if arrival_rate > 0 else 0.0
            return self.step_utilization(utilization)
        return self.step_utilization(arrival_rate / service_rate)

    def step_utilization(self, utilization: float) -> float:
        """One periodic adjustment from measured utilization ρ = λ/μ.

        With ``smoothing`` set (EWMA weight β on the new sample — an
        extension beyond the paper), a single noisy measurement cannot
        whipsaw the budget; β = 1 or ``None`` is the paper's raw control
        law.
        """
        if utilization < 0:
            raise ValueError("utilization must be non-negative")
        if math.isinf(utilization):
            # A stalled-server measurement (μ = 0 under load): the server
            # is infinitely utilized, so the budget collapses straight to
            # the floor.  Skip the EWMA update — folding inf into the
            # smoothed state would pin every later measurement at inf.
            previous = self.z
            self.z = self.z_floor
            if self.z < previous:
                logger.debug(
                    "throttle collapsed: rho=inf -> z %.3f -> %.3f",
                    previous, self.z,
                )
            self.history.append(self.z)
            return self.z
        if self.smoothing is not None:
            if self._smoothed_utilization is None:
                self._smoothed_utilization = utilization
            else:
                self._smoothed_utilization = (
                    self.smoothing * utilization
                    + (1.0 - self.smoothing) * self._smoothed_utilization
                )
            utilization = self._smoothed_utilization
        u = utilization / self.target_utilization
        previous = self.z
        if u <= 0:
            # No arrivals at all: the law z/u is undefined, but snapping
            # the budget fully open would whipsaw — one empty measurement
            # period (a lossy uplink, a churn dip) and the next overload
            # period re-sheds from scratch.  Reopen gradually instead,
            # bounded by reopen_factor per period.
            self.z = min(1.0, self.z * self.reopen_factor)
        else:
            self.z = min(1.0, max(self.z_floor, self.z / u))
        if self.z < previous:
            logger.debug(
                "throttle tightened: rho=%.3f -> z %.3f -> %.3f",
                utilization, previous, self.z,
            )
        self.history.append(self.z)
        return self.z

    def reset(self) -> None:
        """Return to the initial fully open budget (z = 1)."""
        self.z = 1.0
        self.history.clear()
        self._smoothed_utilization = None
