"""Shedding plans: the artifact LIRA computes and distributes.

A :class:`SheddingPlan` pairs every shedding region with its update
throttler Δᵢ and supports the one operation mobile nodes need: "which Δ
applies at my position?"  Lookup is O(1) via a rasterized region-id grid
— valid because every partitioning this library produces (quad-tree
blocks, uniform l-partitionings) aligns its region boundaries to
statistics-grid cell boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geo import Rect
from repro.core.config import LiraConfig
from repro.core.greedy import RegionStats


def clamp_thresholds(thresholds: np.ndarray, config: LiraConfig) -> np.ndarray:
    """Project throttlers into the paper's invariants (a copy is returned).

    Enforces the Δ domain ``Δ⊢ ≤ Δᵢ ≤ Δ⊣`` and the fairness spread
    ``max Δᵢ − min Δᵢ ≤ Δ⇔`` (by lowering outliers toward
    ``min Δᵢ + Δ⇔``).  ``greedy_increment`` constructs thresholds inside
    these bounds already; hand-built threshold vectors — trivial plans,
    ablations, test fixtures — must route through this helper before
    reaching :meth:`SheddingPlan.from_regions` (reprolint rule REP020).
    """
    out = np.array(thresholds, dtype=np.float64, copy=True)
    if out.size == 0:
        return out
    np.clip(out, config.delta_min, config.delta_max, out=out)
    if config.fairness is not None:
        ceiling = float(out.min()) + config.fairness
        np.clip(out, None, ceiling, out=out)
    return out


@dataclass(frozen=True, slots=True)
class SheddingRegion:
    """One shedding region with its assigned update throttler."""

    rect: Rect
    delta: float
    n: float
    m: float
    s: float


class PlanEpochMismatch(ValueError):
    """A delta's base epoch does not match the plan it is applied to.

    Receivers catch this to request a full-plan resync instead of
    silently applying a delta against the wrong baseline.
    """


@dataclass(frozen=True, slots=True)
class PlanDelta:
    """The per-region difference between two same-geometry plans.

    Region rectangles are unchanged by construction (geometry changes
    cannot be expressed as a delta — :meth:`SheddingPlan.diff` returns
    ``None`` and senders fall back to a full-plan push).  ``changes``
    lists ``(region_index, delta, n, m, s)`` for every region whose
    update throttler changed — the part mobile nodes must learn, and
    the part broadcast airtime is charged for.  ``stat_changes`` lists
    ``(region_index, n, m, s)`` for regions whose statistics drifted
    while the throttler stayed put: server-side bookkeeping that rides
    along so :meth:`SheddingPlan.apply_delta` reconstructs the target
    plan exactly, but costs no wireless payload.  ``base_epoch`` is the
    epoch the delta applies on top of; ``epoch`` the epoch of the
    resulting plan.
    """

    base_epoch: int
    epoch: int
    num_regions: int
    changes: tuple[tuple[int, float, float, float, float], ...]
    stat_changes: tuple[tuple[int, float, float, float], ...] = ()

    @property
    def num_changes(self) -> int:
        """Regions whose throttler changed (the airtime-relevant count)."""
        return len(self.changes)

    def to_dict(self) -> dict:
        """A JSON-serializable description of the delta."""
        return {
            "format": "repro.plan-delta",
            "version": 1,
            "base_epoch": self.base_epoch,
            "epoch": self.epoch,
            "num_regions": self.num_regions,
            "changes": [list(change) for change in self.changes],
            "stat_changes": [list(change) for change in self.stat_changes],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "PlanDelta":
        """Rebuild a delta written by :meth:`to_dict`."""
        if doc.get("format") != "repro.plan-delta":
            raise ValueError("not a repro plan-delta document")
        if doc.get("version") != 1:
            raise ValueError(f"unsupported delta version {doc.get('version')!r}")
        return cls(
            base_epoch=int(doc["base_epoch"]),
            epoch=int(doc["epoch"]),
            num_regions=int(doc["num_regions"]),
            changes=tuple(
                (int(i), float(d), float(n), float(m), float(s))
                for i, d, n, m, s in doc["changes"]
            ),
            stat_changes=tuple(
                (int(i), float(n), float(m), float(s))
                for i, n, m, s in doc.get("stat_changes", [])
            ),
        )


class SheddingPlan:
    """A complete load-shedding configuration for the monitoring space.

    Construct via :meth:`from_regions`.  ``resolution`` must be fine
    enough that every region boundary lies on a raster line (for
    LIRA plans pass the statistics-grid α; for uniform k×k plans pass a
    multiple of k).  Misaligned regions raise at construction rather
    than silently mis-assigning thresholds.
    """

    def __init__(
        self,
        bounds: Rect,
        regions: list[SheddingRegion],
        id_grid: np.ndarray,
        epoch: int = 0,
    ) -> None:
        self.bounds = bounds
        self.regions = regions
        self.epoch = epoch
        self._id_grid = id_grid
        self._resolution = id_grid.shape[0]
        self._deltas = np.array([r.delta for r in regions], dtype=np.float64)
        self._rect_arrays: tuple[np.ndarray, ...] | None = None

    @classmethod
    def from_regions(
        cls,
        bounds: Rect,
        regions: list[RegionStats],
        thresholds: np.ndarray,
        resolution: int,
        epoch: int = 0,
    ) -> "SheddingPlan":
        """Build a plan from partitioning output + greedy thresholds."""
        if len(regions) != len(thresholds):
            raise ValueError("one threshold per region is required")
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        shed_regions = [
            SheddingRegion(
                rect=reg.rect, delta=float(d), n=reg.n, m=reg.m, s=reg.s
            )
            for reg, d in zip(regions, thresholds)
        ]
        id_grid = cls._rasterize(bounds, shed_regions, resolution)
        return cls(bounds=bounds, regions=shed_regions, id_grid=id_grid, epoch=epoch)

    def with_content(
        self,
        regions: list[RegionStats],
        thresholds: np.ndarray,
        epoch: int,
    ) -> "SheddingPlan":
        """A same-geometry plan with new thresholds/statistics.

        Shares this plan's rasterized id grid instead of re-rasterizing
        — valid only when ``regions`` carry exactly this plan's
        rectangles in order (checked).  Produces the same plan
        :meth:`from_regions` would, in O(regions) time.
        """
        if len(regions) != len(self.regions) or any(
            reg.rect != old.rect for reg, old in zip(regions, self.regions)
        ):
            raise ValueError("with_content requires identical region geometry")
        if len(regions) != len(thresholds):
            raise ValueError("one threshold per region is required")
        shed_regions = [
            SheddingRegion(
                rect=reg.rect, delta=float(d), n=reg.n, m=reg.m, s=reg.s
            )
            for reg, d in zip(regions, thresholds)
        ]
        return SheddingPlan(
            bounds=self.bounds,
            regions=shed_regions,
            id_grid=self._id_grid,
            epoch=epoch,
        )

    @staticmethod
    def _rasterize(
        bounds: Rect, regions: list[SheddingRegion], resolution: int
    ) -> np.ndarray:
        cell_w = bounds.width / resolution
        cell_h = bounds.height / resolution
        id_grid = np.full((resolution, resolution), -1, dtype=np.int64)
        tol = 1e-6 * max(cell_w, cell_h)
        for region_id, region in enumerate(regions):
            rect = region.rect
            i_lo = int(round((rect.x1 - bounds.x1) / cell_w))
            i_hi = int(round((rect.x2 - bounds.x1) / cell_w))
            j_lo = int(round((rect.y1 - bounds.y1) / cell_h))
            j_hi = int(round((rect.y2 - bounds.y1) / cell_h))
            aligned = (
                abs(bounds.x1 + i_lo * cell_w - rect.x1) <= tol
                and abs(bounds.x1 + i_hi * cell_w - rect.x2) <= tol
                and abs(bounds.y1 + j_lo * cell_h - rect.y1) <= tol
                and abs(bounds.y1 + j_hi * cell_h - rect.y2) <= tol
            )
            if not aligned:
                raise ValueError(
                    f"region {region_id} ({rect}) is not aligned to a "
                    f"{resolution}x{resolution} raster of the bounds"
                )
            id_grid[i_lo:i_hi, j_lo:j_hi] = region_id
        if np.any(id_grid < 0):
            raise ValueError("regions do not tile the monitoring space")
        return id_grid

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def thresholds(self) -> np.ndarray:
        """Per-region Δᵢ, in region order (copy)."""
        return self._deltas.copy()

    def rect_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Region rectangles as ``(x1, y1, x2, y2)`` arrays (cached).

        Vectorized geometry consumers (base-station coverage) read the
        region layout from these instead of walking ``regions``.  Built
        lazily once per plan; treat the arrays as read-only.
        """
        if self._rect_arrays is None:
            self._rect_arrays = (
                np.array([r.rect.x1 for r in self.regions], dtype=np.float64),
                np.array([r.rect.y1 for r in self.regions], dtype=np.float64),
                np.array([r.rect.x2 for r in self.regions], dtype=np.float64),
                np.array([r.rect.y2 for r in self.regions], dtype=np.float64),
            )
        return self._rect_arrays

    def region_ids_for(self, positions: np.ndarray) -> np.ndarray:
        """Region index for each position (n, 2); out-of-bounds clamps."""
        positions = np.asarray(positions, dtype=np.float64)
        ix = (
            (positions[:, 0] - self.bounds.x1)
            / self.bounds.width
            * self._resolution
        ).astype(np.int64)
        iy = (
            (positions[:, 1] - self.bounds.y1)
            / self.bounds.height
            * self._resolution
        ).astype(np.int64)
        np.clip(ix, 0, self._resolution - 1, out=ix)
        np.clip(iy, 0, self._resolution - 1, out=iy)
        return self._id_grid[ix, iy]

    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        """The Δ each node at ``positions`` must use (vectorized lookup)."""
        return self._deltas[self.region_ids_for(positions)]

    def threshold_at(self, x: float, y: float) -> float:
        """The Δ applying at a single point."""
        return float(self.thresholds_for(np.array([[x, y]]))[0])

    def region_at(self, x: float, y: float) -> SheddingRegion:
        """The shedding region containing a point."""
        idx = int(self.region_ids_for(np.array([[x, y]]))[0])
        return self.regions[idx]

    def max_threshold_spread(self) -> float:
        """``max Δᵢ − min Δᵢ`` — must not exceed the fairness threshold."""
        return float(self._deltas.max() - self._deltas.min())

    def predicted_inaccuracy(self) -> float:
        """The objective value ``Σ mᵢ·Δᵢ`` of this plan."""
        return float(sum(r.m * r.delta for r in self.regions))

    # ------------------------------------------------------------------
    # Deltas
    # ------------------------------------------------------------------

    def same_geometry(self, other: "SheddingPlan") -> bool:
        """True when both plans tile the space with identical rectangles.

        Same-geometry plans share a rasterization, so a per-region delta
        can carry one into the other without touching the id grid.
        """
        return (
            self.bounds == other.bounds
            and self._resolution == other._resolution
            and len(self.regions) == len(other.regions)
            and all(
                a.rect == b.rect for a, b in zip(self.regions, other.regions)
            )
        )

    def diff(self, new: "SheddingPlan") -> PlanDelta | None:
        """The delta carrying this plan to ``new``, or ``None``.

        ``None`` means the geometry changed and receivers need the full
        plan.  A delta with empty ``changes`` and ``stat_changes`` means
        the content is identical (only the epoch stamp moves).  Regions
        whose throttler moved land in ``changes``; regions whose
        statistics drifted under a steady throttler land in
        ``stat_changes`` and cost no broadcast airtime.
        """
        if not self.same_geometry(new):
            return None
        changes: list[tuple[int, float, float, float, float]] = []
        stat_changes: list[tuple[int, float, float, float]] = []
        for index, (a, b) in enumerate(zip(self.regions, new.regions)):
            if a.delta != b.delta:
                changes.append((index, b.delta, b.n, b.m, b.s))
            elif (a.n, a.m, a.s) != (b.n, b.m, b.s):
                stat_changes.append((index, b.n, b.m, b.s))
        return PlanDelta(
            base_epoch=self.epoch,
            epoch=new.epoch,
            num_regions=len(new.regions),
            changes=tuple(changes),
            stat_changes=tuple(stat_changes),
        )

    def apply_delta(self, delta: PlanDelta) -> "SheddingPlan":
        """The plan that ``delta`` carries this plan to.

        Raises :class:`PlanEpochMismatch` when the delta was not built
        against this plan's epoch — the receiver must resync with a full
        plan.  The rasterized id grid is shared with this plan (regions
        keep their rectangles), making application O(changes).
        """
        if delta.base_epoch != self.epoch:
            raise PlanEpochMismatch(
                f"delta applies to epoch {delta.base_epoch}, plan is at "
                f"epoch {self.epoch}"
            )
        if delta.num_regions != len(self.regions):
            raise PlanEpochMismatch(
                f"delta describes {delta.num_regions} regions, plan has "
                f"{len(self.regions)}"
            )
        regions = list(self.regions)
        for index, d, n, m, s in delta.changes:
            if not (0 <= index < len(regions)):
                raise ValueError(f"delta region index {index} out of range")
            regions[index] = SheddingRegion(
                rect=regions[index].rect, delta=d, n=n, m=m, s=s
            )
        for index, n, m, s in delta.stat_changes:
            if not (0 <= index < len(regions)):
                raise ValueError(f"delta region index {index} out of range")
            regions[index] = SheddingRegion(
                rect=regions[index].rect, delta=regions[index].delta, n=n, m=m, s=s
            )
        return SheddingPlan(
            bounds=self.bounds,
            regions=regions,
            id_grid=self._id_grid,
            epoch=delta.epoch,
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable description of the plan."""
        return {
            "format": "repro.plan",
            "version": 1,
            "epoch": self.epoch,
            "bounds": [self.bounds.x1, self.bounds.y1, self.bounds.x2, self.bounds.y2],
            "resolution": self._resolution,
            "regions": [
                {
                    "rect": [r.rect.x1, r.rect.y1, r.rect.x2, r.rect.y2],
                    "delta": r.delta,
                    "n": r.n,
                    "m": r.m,
                    "s": r.s,
                }
                for r in self.regions
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SheddingPlan":
        """Rebuild a plan written by :meth:`to_dict` (raster recomputed)."""
        if doc.get("format") != "repro.plan":
            raise ValueError("not a repro shedding-plan document")
        if doc.get("version") != 1:
            raise ValueError(f"unsupported plan version {doc.get('version')!r}")
        bounds = Rect(*doc["bounds"])
        regions = [
            RegionStats(
                rect=Rect(*record["rect"]),
                n=record["n"],
                m=record["m"],
                s=record["s"],
            )
            for record in doc["regions"]
        ]
        thresholds = np.array([record["delta"] for record in doc["regions"]])
        return cls.from_regions(
            bounds,
            regions,
            thresholds,
            doc["resolution"],
            epoch=int(doc.get("epoch", 0)),
        )

    def save(self, path: str | Path) -> None:
        """Write the plan to a JSON file."""
        import json

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "SheddingPlan":
        """Read a plan written by :meth:`save`."""
        import json

        return cls.from_dict(json.loads(Path(path).read_text()))
