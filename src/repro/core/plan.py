"""Shedding plans: the artifact LIRA computes and distributes.

A :class:`SheddingPlan` pairs every shedding region with its update
throttler Δᵢ and supports the one operation mobile nodes need: "which Δ
applies at my position?"  Lookup is O(1) via a rasterized region-id grid
— valid because every partitioning this library produces (quad-tree
blocks, uniform l-partitionings) aligns its region boundaries to
statistics-grid cell boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.geo import Rect
from repro.core.config import LiraConfig
from repro.core.greedy import RegionStats


def clamp_thresholds(thresholds: np.ndarray, config: LiraConfig) -> np.ndarray:
    """Project throttlers into the paper's invariants (a copy is returned).

    Enforces the Δ domain ``Δ⊢ ≤ Δᵢ ≤ Δ⊣`` and the fairness spread
    ``max Δᵢ − min Δᵢ ≤ Δ⇔`` (by lowering outliers toward
    ``min Δᵢ + Δ⇔``).  ``greedy_increment`` constructs thresholds inside
    these bounds already; hand-built threshold vectors — trivial plans,
    ablations, test fixtures — must route through this helper before
    reaching :meth:`SheddingPlan.from_regions` (reprolint rule REP020).
    """
    out = np.array(thresholds, dtype=np.float64, copy=True)
    if out.size == 0:
        return out
    np.clip(out, config.delta_min, config.delta_max, out=out)
    if config.fairness is not None:
        ceiling = float(out.min()) + config.fairness
        np.clip(out, None, ceiling, out=out)
    return out


@dataclass(frozen=True, slots=True)
class SheddingRegion:
    """One shedding region with its assigned update throttler."""

    rect: Rect
    delta: float
    n: float
    m: float
    s: float


class SheddingPlan:
    """A complete load-shedding configuration for the monitoring space.

    Construct via :meth:`from_regions`.  ``resolution`` must be fine
    enough that every region boundary lies on a raster line (for
    LIRA plans pass the statistics-grid α; for uniform k×k plans pass a
    multiple of k).  Misaligned regions raise at construction rather
    than silently mis-assigning thresholds.
    """

    def __init__(
        self, bounds: Rect, regions: list[SheddingRegion], id_grid: np.ndarray
    ) -> None:
        self.bounds = bounds
        self.regions = regions
        self._id_grid = id_grid
        self._resolution = id_grid.shape[0]
        self._deltas = np.array([r.delta for r in regions], dtype=np.float64)

    @classmethod
    def from_regions(
        cls,
        bounds: Rect,
        regions: list[RegionStats],
        thresholds: np.ndarray,
        resolution: int,
    ) -> "SheddingPlan":
        """Build a plan from partitioning output + greedy thresholds."""
        if len(regions) != len(thresholds):
            raise ValueError("one threshold per region is required")
        if resolution < 1:
            raise ValueError("resolution must be >= 1")
        shed_regions = [
            SheddingRegion(
                rect=reg.rect, delta=float(d), n=reg.n, m=reg.m, s=reg.s
            )
            for reg, d in zip(regions, thresholds)
        ]
        id_grid = cls._rasterize(bounds, shed_regions, resolution)
        return cls(bounds=bounds, regions=shed_regions, id_grid=id_grid)

    @staticmethod
    def _rasterize(
        bounds: Rect, regions: list[SheddingRegion], resolution: int
    ) -> np.ndarray:
        cell_w = bounds.width / resolution
        cell_h = bounds.height / resolution
        id_grid = np.full((resolution, resolution), -1, dtype=np.int64)
        tol = 1e-6 * max(cell_w, cell_h)
        for region_id, region in enumerate(regions):
            rect = region.rect
            i_lo = int(round((rect.x1 - bounds.x1) / cell_w))
            i_hi = int(round((rect.x2 - bounds.x1) / cell_w))
            j_lo = int(round((rect.y1 - bounds.y1) / cell_h))
            j_hi = int(round((rect.y2 - bounds.y1) / cell_h))
            aligned = (
                abs(bounds.x1 + i_lo * cell_w - rect.x1) <= tol
                and abs(bounds.x1 + i_hi * cell_w - rect.x2) <= tol
                and abs(bounds.y1 + j_lo * cell_h - rect.y1) <= tol
                and abs(bounds.y1 + j_hi * cell_h - rect.y2) <= tol
            )
            if not aligned:
                raise ValueError(
                    f"region {region_id} ({rect}) is not aligned to a "
                    f"{resolution}x{resolution} raster of the bounds"
                )
            id_grid[i_lo:i_hi, j_lo:j_hi] = region_id
        if np.any(id_grid < 0):
            raise ValueError("regions do not tile the monitoring space")
        return id_grid

    @property
    def num_regions(self) -> int:
        return len(self.regions)

    @property
    def thresholds(self) -> np.ndarray:
        """Per-region Δᵢ, in region order (copy)."""
        return self._deltas.copy()

    def region_ids_for(self, positions: np.ndarray) -> np.ndarray:
        """Region index for each position (n, 2); out-of-bounds clamps."""
        positions = np.asarray(positions, dtype=np.float64)
        ix = (
            (positions[:, 0] - self.bounds.x1)
            / self.bounds.width
            * self._resolution
        ).astype(np.int64)
        iy = (
            (positions[:, 1] - self.bounds.y1)
            / self.bounds.height
            * self._resolution
        ).astype(np.int64)
        np.clip(ix, 0, self._resolution - 1, out=ix)
        np.clip(iy, 0, self._resolution - 1, out=iy)
        return self._id_grid[ix, iy]

    def thresholds_for(self, positions: np.ndarray) -> np.ndarray:
        """The Δ each node at ``positions`` must use (vectorized lookup)."""
        return self._deltas[self.region_ids_for(positions)]

    def threshold_at(self, x: float, y: float) -> float:
        """The Δ applying at a single point."""
        return float(self.thresholds_for(np.array([[x, y]]))[0])

    def region_at(self, x: float, y: float) -> SheddingRegion:
        """The shedding region containing a point."""
        idx = int(self.region_ids_for(np.array([[x, y]]))[0])
        return self.regions[idx]

    def max_threshold_spread(self) -> float:
        """``max Δᵢ − min Δᵢ`` — must not exceed the fairness threshold."""
        return float(self._deltas.max() - self._deltas.min())

    def predicted_inaccuracy(self) -> float:
        """The objective value ``Σ mᵢ·Δᵢ`` of this plan."""
        return float(sum(r.m * r.delta for r in self.regions))

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """A JSON-serializable description of the plan."""
        return {
            "format": "repro.plan",
            "version": 1,
            "bounds": [self.bounds.x1, self.bounds.y1, self.bounds.x2, self.bounds.y2],
            "resolution": self._resolution,
            "regions": [
                {
                    "rect": [r.rect.x1, r.rect.y1, r.rect.x2, r.rect.y2],
                    "delta": r.delta,
                    "n": r.n,
                    "m": r.m,
                    "s": r.s,
                }
                for r in self.regions
            ],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "SheddingPlan":
        """Rebuild a plan written by :meth:`to_dict` (raster recomputed)."""
        if doc.get("format") != "repro.plan":
            raise ValueError("not a repro shedding-plan document")
        if doc.get("version") != 1:
            raise ValueError(f"unsupported plan version {doc.get('version')!r}")
        bounds = Rect(*doc["bounds"])
        regions = [
            RegionStats(
                rect=Rect(*record["rect"]),
                n=record["n"],
                m=record["m"],
                s=record["s"],
            )
            for record in doc["regions"]
        ]
        thresholds = np.array([record["delta"] for record in doc["regions"]])
        return cls.from_regions(bounds, regions, thresholds, doc["resolution"])

    def save(self, path: str | Path) -> None:
        """Write the plan to a JSON file."""
        import json

        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "SheddingPlan":
        """Read a plan written by :meth:`save`."""
        import json

        return cls.from_dict(json.loads(Path(path).read_text()))
