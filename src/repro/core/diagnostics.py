"""Diagnostics: terminal renderings of plans and statistics grids.

Reproduces what the paper's Figure 3 conveys visually — where the
partitioning is fine, where it is coarse, and how the throttlers vary —
without a plotting dependency.  Used by examples and handy in a REPL.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import SheddingPlan
from repro.core.statistics_grid import StatisticsGrid

#: Density ramp from sparse to dense.
_RAMP = " .:-=+*#%@"


def render_plan_heatmap(plan: SheddingPlan, width: int = 48) -> str:
    """ASCII heat map of a plan's update throttlers.

    Dark glyphs = large Δ (heavy shedding), light = small Δ (accurate
    tracking).  Region boundaries are visible as value discontinuities.
    """
    if width < 4:
        raise ValueError("width must be >= 4")
    height = max(4, int(width * plan.bounds.height / plan.bounds.width / 2))
    xs = np.linspace(plan.bounds.x1, plan.bounds.x2, width, endpoint=False)
    ys = np.linspace(plan.bounds.y1, plan.bounds.y2, height, endpoint=False)
    cell_w = plan.bounds.width / width
    cell_h = plan.bounds.height / height
    grid_x, grid_y = np.meshgrid(xs + cell_w / 2, ys + cell_h / 2)
    samples = np.column_stack([grid_x.ravel(), grid_y.ravel()])
    thresholds = plan.thresholds_for(samples).reshape(height, width)
    lo = plan.thresholds.min()
    hi = plan.thresholds.max()
    span = hi - lo if hi > lo else 1.0
    lines = [
        f"update throttlers: light={lo:.0f} m ... dark={hi:.0f} m",
    ]
    for j in range(height - 1, -1, -1):
        row = "".join(
            _RAMP[int((thresholds[j, i] - lo) / span * (len(_RAMP) - 1))]
            for i in range(width)
        )
        lines.append(row)
    return "\n".join(lines)


def render_density_map(grid: StatisticsGrid, field: str = "n", width: int = 48) -> str:
    """ASCII heat map of one statistics-grid field (``n``, ``m``, or ``s``)."""
    if field not in ("n", "m", "s"):
        raise ValueError("field must be one of 'n', 'm', 's'")
    data = getattr(grid, field)
    height = max(4, width // 2)
    # Downsample/upsample the alpha x alpha field to the render size.
    xi = np.minimum(
        (np.arange(width) * grid.alpha // width), grid.alpha - 1
    )
    yj = np.minimum(
        (np.arange(height) * grid.alpha // height), grid.alpha - 1
    )
    sampled = data[np.ix_(xi, yj)]
    hi = sampled.max()
    lines = [f"statistics grid field '{field}' (max={hi:.2f})"]
    for j in range(height - 1, -1, -1):
        if hi > 0:
            row = "".join(
                _RAMP[int(sampled[i, j] / hi * (len(_RAMP) - 1))]
                for i in range(width)
            )
        else:
            row = " " * width
        lines.append(row)
    return "\n".join(lines)
