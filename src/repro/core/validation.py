"""Plan validation: cross-checks between LIRA's components.

A :class:`~repro.core.plan.SheddingPlan` encodes promises — the regions
tile the space, the throttlers respect the domain and fairness bounds,
and the predicted update expenditure fits the budget.  These helpers
verify them explicitly; the test suite uses them, and so can users who
build plans from custom partitionings.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import LiraConfig
from repro.core.plan import SheddingPlan
from repro.core.reduction import ReductionFunction


@dataclass
class PlanValidationReport:
    """Outcome of :func:`validate_plan`; falsy when any check failed."""

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)
    predicted_expenditure_ratio: float | None = None

    @property
    def ok(self) -> bool:
        return not self.errors

    def __bool__(self) -> bool:
        return self.ok


def validate_plan(
    plan: SheddingPlan,
    config: LiraConfig,
    reduction: ReductionFunction | None = None,
    budget_tolerance: float = 0.02,
) -> PlanValidationReport:
    """Check a shedding plan against a configuration's promises.

    Verifies: region tiling (area conservation and pairwise
    disjointness), throttler domain ``[Δ⊢, Δ⊣]``, the fairness bound
    ``max Δ − min Δ <= Δ⇔``, and — when ``reduction`` is given — that
    the plan's predicted expenditure ``Σ nᵢ·sᵢ·f(Δᵢ)`` fits within
    ``z`` of the full-accuracy expenditure (up to ``budget_tolerance``),
    unless the budget was unreachable (all throttlers at Δ⊣).
    """
    report = PlanValidationReport()

    total_area = sum(r.rect.area for r in plan.regions)
    if not np.isclose(total_area, plan.bounds.area, rtol=1e-9):
        report.errors.append(
            f"regions cover {total_area:.6g} of {plan.bounds.area:.6g} area"
        )
    for i, a in enumerate(plan.regions):
        for b in plan.regions[i + 1 :]:
            if a.rect.intersects(b.rect):
                report.errors.append(f"regions overlap: {a.rect} and {b.rect}")
                break

    thresholds = plan.thresholds
    if thresholds.min() < config.delta_min - 1e-9:
        report.errors.append(
            f"throttler {thresholds.min():.3f} below delta_min {config.delta_min}"
        )
    if thresholds.max() > config.delta_max + 1e-9:
        report.errors.append(
            f"throttler {thresholds.max():.3f} above delta_max {config.delta_max}"
        )
    if config.fairness is not None:
        spread = plan.max_threshold_spread()
        if spread > config.fairness + 1e-9:
            report.errors.append(
                f"threshold spread {spread:.3f} exceeds fairness {config.fairness}"
            )

    if reduction is not None:
        weights = np.array([r.n * r.s for r in plan.regions])
        if weights.sum() <= 0:
            weights = np.array([r.n for r in plan.regions])
        full = float(weights.sum())  # f(delta_min) = 1
        if full > 0:
            spent = float(
                sum(w * reduction.f(float(d)) for w, d in zip(weights, thresholds))
            )
            ratio = spent / full
            report.predicted_expenditure_ratio = ratio
            # A plan is "saturated" (budget unreachable) when every
            # sheddable region's throttler sits at its effective ceiling:
            # delta_max, or the fairness ceiling min(Δ) + Δ⇔ when the
            # fairness constraint binds first.
            ceiling = config.delta_max
            if config.fairness is not None:
                ceiling = min(ceiling, float(thresholds.min()) + config.fairness)
            saturated = bool(
                np.all((thresholds >= ceiling - 1e-9) | (weights <= 0))
            )
            if ratio > config.z + budget_tolerance and not saturated:
                report.errors.append(
                    f"predicted expenditure ratio {ratio:.3f} exceeds "
                    f"z={config.z} (+{budget_tolerance})"
                )
        else:
            report.warnings.append("plan has no update weight; budget check skipped")

    return report
