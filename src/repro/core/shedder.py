"""The LIRA load shedder: GRIDREDUCE + GREEDYINCREMENT + THROTLOOP.

:class:`LiraLoadShedder` is the server-side orchestrator.  Each call to
:meth:`LiraLoadShedder.adapt` runs one adaptation step — partition the
space from the current statistics grid, set the update throttlers within
the current budget — and returns the :class:`~repro.core.plan.SheddingPlan`
to broadcast.  The throttle fraction z can be fixed (a system-level
parameter) or driven by the embedded :class:`~repro.core.throtloop.ThrotLoop`
via :meth:`LiraLoadShedder.observe_load`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass

from repro.core.config import LiraConfig
from repro.core.gridreduce import grid_reduce
from repro.core.greedy import GreedyResult, greedy_increment
from repro.core.incremental import IncrementalAdaptSession
from repro.core.plan import SheddingPlan
from repro.core.quadtree import RegionHierarchy
from repro.core.reduction import ReductionFunction
from repro.core.statistics_grid import StatisticsGrid
from repro.core.throtloop import ThrotLoop
from repro.timing import Stopwatch

logger = logging.getLogger(__name__)


@dataclass
class AdaptationReport:
    """Diagnostics of one adaptation step."""

    plan: SheddingPlan
    z: float
    num_regions: int
    budget_met: bool
    predicted_inaccuracy: float
    elapsed_seconds: float


class LiraLoadShedder:
    """Server-side LIRA: computes shedding plans from grid statistics.

    Args:
        config: algorithm parameters (Table 2 defaults).
        reduction: the update-reduction function f(Δ); it is discretized
            once into κ = ``config.n_segments`` linear segments of size
            c_Δ, the form under which GREEDYINCREMENT is optimal.
        queue_capacity: B for the embedded THROTLOOP controller.
        engine: ``"object"`` runs the scalar reference kernels,
            ``"vector"`` the bit-identical array kernels.
        incremental: keep cross-round state (hierarchy refresh, gain
            memo, trajectory replay, greedy/plan reuse) so adaptation
            cost tracks the statistics drift instead of the domain
            size.  Plans are bit-identical to the from-scratch path;
            additionally, a round whose inputs did not change returns
            the *same plan object* and an unchanged epoch, letting
            downstream broadcast layers skip or delta-encode the push.
    """

    def __init__(
        self,
        config: LiraConfig,
        reduction: ReductionFunction,
        queue_capacity: int = 100,
        engine: str = "object",
        incremental: bool = False,
    ) -> None:
        if not (
            reduction.delta_min == config.delta_min
            and reduction.delta_max == config.delta_max
        ):
            raise ValueError(
                "reduction function domain must match config "
                f"[{config.delta_min}, {config.delta_max}]"
            )
        if engine not in ("object", "vector"):
            raise ValueError(f"unknown shedder engine {engine!r}")
        self.config = config
        self.reduction = reduction.piecewise(config.n_segments)
        self.engine = engine
        self.throtloop = ThrotLoop(queue_capacity=queue_capacity, z=1.0)
        self._fixed_z: float | None = config.z
        self.last_report: AdaptationReport | None = None
        self._session = IncrementalAdaptSession() if incremental else None

    @property
    def incremental(self) -> bool:
        """Whether this shedder keeps cross-round incremental state."""
        return self._session is not None

    @property
    def session(self) -> IncrementalAdaptSession | None:
        """The incremental session state (diagnostics), if enabled."""
        return self._session

    def use_adaptive_throttle(self) -> None:
        """Let THROTLOOP drive z instead of the configured constant."""
        self._fixed_z = None

    def set_throttle_fraction(self, z: float) -> None:
        """Pin z to a fixed value (overriding THROTLOOP)."""
        if not (0.0 <= z <= 1.0):
            raise ValueError("z must be in [0, 1]")
        self._fixed_z = z

    def observe_load(self, arrival_rate: float, service_rate: float) -> float:
        """Feed one load measurement to THROTLOOP; returns the new z."""
        return self.throtloop.step(arrival_rate, service_rate)

    @property
    def current_z(self) -> float:
        """The throttle fraction the next adaptation will use."""
        return self._fixed_z if self._fixed_z is not None else self.throtloop.z

    def adapt(self, grid: StatisticsGrid) -> SheddingPlan:
        """One full adaptation step; returns the new shedding plan.

        Runs GRIDREDUCE on the hierarchy built from ``grid``, then
        GREEDYINCREMENT over the resulting regions.  Timing and budget
        diagnostics land in :attr:`last_report`.
        """
        if grid.alpha != self.config.resolved_alpha:
            raise ValueError(
                f"statistics grid is {grid.alpha} cells/side, config expects "
                f"{self.config.resolved_alpha}"
            )
        z = self.current_z
        with Stopwatch() as stopwatch:
            plan, result = self._compute_plan(grid, z)
        elapsed = stopwatch.elapsed
        logger.debug(
            "adaptation: z=%.3f regions=%d budget_met=%s inaccuracy=%.2f "
            "elapsed=%.1fms",
            z,
            plan.num_regions,
            result.budget_met,
            result.inaccuracy,
            elapsed * 1000,
        )
        if not result.budget_met:
            logger.warning(
                "update budget unreachable at z=%.3f: all throttlers "
                "saturated; consider raising delta_max or lowering load",
                z,
            )
        self.last_report = AdaptationReport(
            plan=plan,
            z=z,
            num_regions=plan.num_regions,
            budget_met=result.budget_met,
            predicted_inaccuracy=result.inaccuracy,
            elapsed_seconds=elapsed,
        )
        return plan

    def _compute_plan(
        self, grid: StatisticsGrid, z: float
    ) -> tuple[SheddingPlan, GreedyResult]:
        """One partition + throttle solve; routes to the session if set."""
        if self._session is not None:
            return self._compute_plan_incremental(grid, z)
        hierarchy = RegionHierarchy(grid)
        partitioning = grid_reduce(
            hierarchy,
            self.config.l,
            z,
            self.reduction,
            increment=self.config.increment,
            use_speed=self.config.use_speed,
            engine=self.engine,
        )
        result = greedy_increment(
            partitioning.regions,
            self.reduction,
            z,
            increment=self.config.increment,
            fairness=self.config.fairness,
            use_speed=self.config.use_speed,
            engine=self.engine,
        )
        plan = SheddingPlan.from_regions(
            bounds=grid.bounds,
            regions=partitioning.regions,
            thresholds=result.thresholds,
            resolution=grid.alpha,
        )
        return plan, result

    def _compute_plan_incremental(
        self, grid: StatisticsGrid, z: float
    ) -> tuple[SheddingPlan, GreedyResult]:
        """The incremental adapt round — bit-identical to from-scratch.

        Stages, each skipping work the drift did not invalidate:

        1. sparse hierarchy refresh over the exact changed-cell mask;
        2. GRIDREDUCE with the gain memo + trajectory replay cache;
        3. GREEDYINCREMENT via a single-entry memo keyed on the exact
           region statistics (a pure function of its inputs);
        4. plan construction: same content → the *same plan object*
           (epoch unchanged); same geometry → raster reuse with a new
           epoch; otherwise a full rebuild with a new epoch.
        """
        session = self._session
        assert session is not None
        dirty = session.dirty_mask(grid)
        if dirty is None:
            session.hierarchy = RegionHierarchy(grid)
        else:
            assert session.hierarchy is not None
            session.hierarchy.refresh(grid, dirty)
        session.checkpoint(grid)
        partitioning = grid_reduce(
            session.hierarchy,
            self.config.l,
            z,
            self.reduction,
            increment=self.config.increment,
            use_speed=self.config.use_speed,
            engine=self.engine,
            cache=session.gridreduce,
        )
        regions = partitioning.regions
        greedy_key = (z, tuple(regions))
        if session.greedy_result is not None and session.greedy_key == greedy_key:
            result = session.greedy_result
        else:
            result = greedy_increment(
                regions,
                self.reduction,
                z,
                increment=self.config.increment,
                fairness=self.config.fairness,
                use_speed=self.config.use_speed,
                engine=self.engine,
            )
            session.greedy_key = greedy_key
            session.greedy_result = result
        plan_key = (tuple(regions), tuple(float(d) for d in result.thresholds))
        session.last_plan_reused = False
        session.last_geometry_reused = False
        previous = session.plan
        if previous is not None and session.plan_key == plan_key:
            session.last_plan_reused = True
            return previous, result
        if previous is not None and len(previous.regions) == len(regions) and all(
            reg.rect == old.rect for reg, old in zip(regions, previous.regions)
        ):
            session.epoch += 1
            plan = previous.with_content(regions, result.thresholds, session.epoch)
            session.last_geometry_reused = True
        else:
            if previous is not None:
                session.epoch += 1
            plan = SheddingPlan.from_regions(
                bounds=grid.bounds,
                regions=regions,
                thresholds=result.thresholds,
                resolution=grid.alpha,
                epoch=session.epoch,
            )
        session.plan = plan
        session.plan_key = plan_key
        return plan, result
