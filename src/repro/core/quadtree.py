"""Region hierarchy: the complete quad-tree over the statistics grid.

Stage I of GRIDREDUCE (Algorithm 1, lines 1-9): build a ``log2(α)+1``
level quad-tree whose leaves are the α×α grid cells, aggregating node
counts, query counts, and (node-weighted) average speeds bottom-up.

Aggregation here is vectorized: each level's statistics are 2^d × 2^d
arrays computed from the level below with a block-sum reshape, which is
the numpy equivalent of the paper's post-order traversal and keeps the
O(α²) time bound with a small constant.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo import Rect
from repro.core.statistics_grid import StatisticsGrid


@dataclass(frozen=True, slots=True)
class RegionNode:
    """One quad-tree node: a square block of grid cells with statistics.

    ``level`` 0 is the root (the whole space); at level ``d`` the node is
    the block at coordinates ``(i, j)`` of the 2^d × 2^d uniform
    partitioning.  ``n``, ``m``, ``s`` are the aggregated node count,
    fractional query count, and node-weighted mean speed.
    """

    level: int
    i: int
    j: int
    n: float
    m: float
    s: float
    rect: Rect


class RegionHierarchy:
    """Complete quad-tree of aggregated statistics over an α×α grid.

    Requires α to be a power of two (as in the paper) so the hierarchy
    bottoms out exactly at the grid cells.
    """

    def __init__(self, grid: StatisticsGrid) -> None:
        alpha = grid.alpha
        if alpha & (alpha - 1) != 0:
            raise ValueError(f"alpha must be a power of two, got {alpha}")
        self.bounds = grid.bounds
        self.alpha = alpha
        self.depth = int(np.log2(alpha))  # leaf level index
        self._n_levels: list[np.ndarray] = [None] * (self.depth + 1)  # type: ignore
        self._m_levels: list[np.ndarray] = [None] * (self.depth + 1)  # type: ignore
        self._s_levels: list[np.ndarray] = [None] * (self.depth + 1)  # type: ignore
        self._n_levels[self.depth] = grid.n.astype(np.float64)
        self._m_levels[self.depth] = grid.m.astype(np.float64)
        self._s_levels[self.depth] = grid.s.astype(np.float64)
        for level in range(self.depth - 1, -1, -1):
            n_child = self._n_levels[level + 1]
            m_child = self._m_levels[level + 1]
            s_child = self._s_levels[level + 1]
            n_parent = _block_sum(n_child)
            m_parent = _block_sum(m_child)
            momentum = _block_sum(n_child * s_child)
            with np.errstate(invalid="ignore", divide="ignore"):
                s_parent = np.where(n_parent > 0, momentum / np.maximum(n_parent, 1e-300), 0.0)
            self._n_levels[level] = n_parent
            self._m_levels[level] = m_parent
            self._s_levels[level] = s_parent

    @property
    def root(self) -> RegionNode:
        """The whole monitoring space with global aggregates."""
        return self.node(0, 0, 0)

    def node(self, level: int, i: int, j: int) -> RegionNode:
        """The node at ``(level, i, j)``; bounds-checked."""
        side = 1 << level
        if not (0 <= level <= self.depth and 0 <= i < side and 0 <= j < side):
            raise IndexError(f"no node at level={level}, i={i}, j={j}")
        w = self.bounds.width / side
        h = self.bounds.height / side
        rect = Rect(
            self.bounds.x1 + i * w,
            self.bounds.y1 + j * h,
            self.bounds.x1 + (i + 1) * w,
            self.bounds.y1 + (j + 1) * h,
        )
        return RegionNode(
            level=level,
            i=i,
            j=j,
            n=float(self._n_levels[level][i, j]),
            m=float(self._m_levels[level][i, j]),
            s=float(self._s_levels[level][i, j]),
            rect=rect,
        )

    def is_leaf(self, node: RegionNode) -> bool:
        """True if the node is a single statistics-grid cell."""
        return node.level == self.depth

    def children(self, node: RegionNode) -> tuple[RegionNode, ...]:
        """The four child nodes (quadrants); empty tuple for leaves."""
        if self.is_leaf(node):
            return ()
        level = node.level + 1
        i2, j2 = node.i * 2, node.j * 2
        return tuple(
            self.node(level, i2 + di, j2 + dj)
            for di in (0, 1)
            for dj in (0, 1)
        )

    def num_nodes(self) -> int:
        """Total node count ``(4^(depth+1) − 1) / 3``."""
        return (4 ** (self.depth + 1) - 1) // 3

    def refresh(self, grid: StatisticsGrid, dirty: np.ndarray) -> list[np.ndarray]:
        """Recompute only the aggregates whose underlying cells changed.

        ``dirty`` is a boolean α×α mask over leaf cells whose statistics
        may differ from this hierarchy's current leaf level.  Dirty leaf
        statistics are copied in from ``grid`` and every ancestor whose
        2x2 block contains a dirty child is recomputed with exactly the
        expressions (and float operation order) full construction uses,
        so a refreshed hierarchy is bit-identical to
        ``RegionHierarchy(grid)`` as long as the clean cells really are
        unchanged.

        Returns the per-level dirty masks (index 0 = the root level's
        1x1 mask, index ``depth`` = ``dirty`` itself); incremental
        GRIDREDUCE uses these to decide which memoized gains and cached
        trajectories are still valid.
        """
        dirty = np.asarray(dirty, dtype=bool)
        if dirty.shape != (self.alpha, self.alpha):
            raise ValueError(
                f"dirty mask shape {dirty.shape} != ({self.alpha}, {self.alpha})"
            )
        masks: list[np.ndarray] = [np.zeros(0, dtype=bool)] * (self.depth + 1)
        masks[self.depth] = dirty
        if dirty.any():
            self._n_levels[self.depth][dirty] = grid.n[dirty]
            self._m_levels[self.depth][dirty] = grid.m[dirty]
            self._s_levels[self.depth][dirty] = grid.s[dirty]
        for level in range(self.depth - 1, -1, -1):
            child_dirty = masks[level + 1]
            parent_dirty = (
                (child_dirty[0::2, 0::2] | child_dirty[0::2, 1::2])
                | child_dirty[1::2, 0::2]
            ) | child_dirty[1::2, 1::2]
            masks[level] = parent_dirty
            ii, jj = np.nonzero(parent_dirty)
            if ii.size == 0:
                continue
            n_child = self._n_levels[level + 1]
            m_child = self._m_levels[level + 1]
            s_child = self._s_levels[level + 1]
            i2, j2 = 2 * ii, 2 * jj
            n00 = n_child[i2, j2]
            n01 = n_child[i2, j2 + 1]
            n10 = n_child[i2 + 1, j2]
            n11 = n_child[i2 + 1, j2 + 1]
            n_parent = ((n00 + n01) + n10) + n11
            m_parent = (
                (m_child[i2, j2] + m_child[i2, j2 + 1]) + m_child[i2 + 1, j2]
            ) + m_child[i2 + 1, j2 + 1]
            momentum = (
                (n00 * s_child[i2, j2] + n01 * s_child[i2, j2 + 1])
                + n10 * s_child[i2 + 1, j2]
            ) + n11 * s_child[i2 + 1, j2 + 1]
            with np.errstate(invalid="ignore", divide="ignore"):
                s_parent = np.where(
                    n_parent > 0, momentum / np.maximum(n_parent, 1e-300), 0.0
                )
            self._n_levels[level][ii, jj] = n_parent
            self._m_levels[level][ii, jj] = m_parent
            self._s_levels[level][ii, jj] = s_parent
        return masks

    def level_stats(self, level: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The ``(n, m, s)`` statistic arrays of one level (2^d × 2^d).

        Array-engine consumers read node statistics straight from these
        (the same float64 values :meth:`node` boxes into
        :class:`RegionNode` objects) instead of materializing nodes.
        """
        if not (0 <= level <= self.depth):
            raise IndexError(f"no level {level} in a depth-{self.depth} hierarchy")
        return (
            self._n_levels[level],
            self._m_levels[level],
            self._s_levels[level],
        )


def _block_sum(array: np.ndarray) -> np.ndarray:
    """Sum each 2x2 block of a 2^k-square array (one level of aggregation).

    The four children are added in explicit left-associative order —
    ``((c[2i,2j] + c[2i,2j+1]) + c[2i+1,2j]) + c[2i+1,2j+1]`` — so a
    sparse refresh that gathers the same four scalars and adds them in
    the same order reproduces every entry bit-identically.
    """
    return (
        (array[0::2, 0::2] + array[0::2, 1::2]) + array[1::2, 0::2]
    ) + array[1::2, 1::2]
