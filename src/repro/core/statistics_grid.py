"""The statistics grid — LIRA's only server-side data structure.

An α×α uniform grid over the monitoring space storing, per cell
``(i, j)``: the number of mobile nodes ``n``, the (fractional) number of
queries ``m``, and the average node speed ``s``.  Paper Section 3.2.1
lists three maintenance options — piggybacking on a grid index, explicit
maintenance from the update stream (optionally sampled), and off-line
precomputation.  All three are supported here:

* :meth:`StatisticsGrid.from_snapshot` — build from a position snapshot
  plus a query workload (the off-line / index-backed route);
* :meth:`StatisticsGrid.ingest_update` + :meth:`StatisticsGrid.roll` —
  constant-time-per-update incremental maintenance with optional
  sampling, accumulating a fresh window and swapping it in.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.geo import Rect
from repro.queries import RangeQuery

if TYPE_CHECKING:
    from repro.index.grid_index import GridIndex


class StatisticsGrid:
    """α×α grid of (node count, query count, mean speed) statistics.

    Indexing convention: ``n[i, j]`` is the cell with x-index ``i`` and
    y-index ``j`` (x grows with i, y with j).
    """

    def __init__(self, bounds: Rect, alpha: int) -> None:
        if alpha < 1:
            raise ValueError("alpha must be >= 1")
        self.bounds = bounds
        self.alpha = alpha
        self.n = np.zeros((alpha, alpha), dtype=np.float64)
        self.m = np.zeros((alpha, alpha), dtype=np.float64)
        self.s = np.zeros((alpha, alpha), dtype=np.float64)
        self._cell_w = bounds.width / alpha
        self._cell_h = bounds.height / alpha
        # Accumulators for incremental maintenance.
        self._acc_count = np.zeros((alpha, alpha), dtype=np.float64)
        self._acc_speed = np.zeros((alpha, alpha), dtype=np.float64)
        self._acc_updates = 0
        # Per-window dirty-cell tracking: cells whose *live* statistics
        # may differ from the last consume_dirty() checkpoint.  A fresh
        # grid is all-dirty (no checkpoint exists yet).
        self._dirty = np.ones((alpha, alpha), dtype=bool)
        self._acc_touched = np.zeros((alpha, alpha), dtype=bool)

    # ------------------------------------------------------------------
    # Construction from snapshots
    # ------------------------------------------------------------------

    @classmethod
    def from_snapshot(
        cls,
        bounds: Rect,
        alpha: int,
        positions: np.ndarray,
        speeds: np.ndarray | None = None,
        queries: list[RangeQuery] | None = None,
    ) -> "StatisticsGrid":
        """Build a grid from current node positions (+speeds, +queries)."""
        grid = cls(bounds, alpha)
        grid.set_node_statistics(positions, speeds)
        if queries:
            grid.set_query_statistics(queries)
        return grid

    @classmethod
    def from_grid_index(
        cls,
        index: GridIndex,
        queries: list[RangeQuery] | None = None,
        speeds: np.ndarray | None = None,
    ) -> "StatisticsGrid":
        """Piggyback on a server's grid index (paper Section 3.2.1).

        "If the mobile CQ server uses a grid-based index on mobile node
        positions the statistics grid can be trivially supported as a
        part of the grid index": node counts come straight from the
        index's cell occupancy.  ``index`` is a
        :class:`~repro.index.GridIndex` whose ``cells_per_side`` becomes
        α.  Per-cell speeds are zero unless ``speeds`` (indexed by point
        id) is supplied.
        """
        grid = cls(index.bounds, index.cells_per_side)
        grid.n = index.cell_counts().astype(np.float64)
        if speeds is not None:
            speeds = np.asarray(speeds, dtype=np.float64)
            speed_sum = np.zeros_like(grid.n)
            for point_id, (cx, cy) in index._locations.items():
                speed_sum[cx, cy] += speeds[point_id]
            with np.errstate(invalid="ignore", divide="ignore"):
                grid.s = np.where(grid.n > 0, speed_sum / np.maximum(grid.n, 1), 0.0)
        if queries:
            grid.set_query_statistics(queries)
        return grid

    def set_node_statistics(
        self, positions: np.ndarray, speeds: np.ndarray | None = None
    ) -> None:
        """Replace node counts and mean speeds from a snapshot.

        ``positions`` has shape ``(n, 2)``; ``speeds`` shape ``(n,)``
        (defaults to zeros).  Out-of-bounds nodes clamp to edge cells.
        """
        positions = np.asarray(positions, dtype=np.float64)
        count = len(positions)
        if speeds is None:
            speeds = np.zeros(count)
        speeds = np.asarray(speeds, dtype=np.float64)
        if speeds.shape != (count,):
            raise ValueError("speeds must have shape (len(positions),)")
        ix, iy = self.cell_indices(positions)
        flat = ix * self.alpha + iy
        n_flat = np.bincount(flat, minlength=self.alpha * self.alpha).astype(np.float64)
        s_flat = np.bincount(flat, weights=speeds, minlength=self.alpha * self.alpha)
        new_n = n_flat.reshape(self.alpha, self.alpha)
        with np.errstate(invalid="ignore", divide="ignore"):
            mean = np.where(n_flat > 0, s_flat / np.maximum(n_flat, 1), 0.0)
        new_s = mean.reshape(self.alpha, self.alpha)
        self._dirty |= (new_n != self.n) | (new_s != self.s)
        self.n = new_n
        self.s = new_s

    def set_query_statistics(self, queries: list[RangeQuery]) -> None:
        """Replace per-cell query counts, counting overlaps fractionally.

        A query contributes ``area(q ∩ cell) / area(q)`` to each cell,
        implementing the paper's "queries partially intersecting the
        shedding region are fractionally counted" rule at grid-cell
        granularity (shedding regions are unions of cells, so fractional
        counts aggregate exactly).
        """
        old_m = self.m
        self.m = np.zeros((self.alpha, self.alpha), dtype=np.float64)
        for query in queries:
            self._add_query(query.rect, 1.0)
        self._dirty |= self.m != old_m

    def _add_query(self, rect: Rect, weight: float) -> None:
        clipped = rect.intersection(
            Rect(self.bounds.x1, self.bounds.y1, self.bounds.x2, self.bounds.y2)
        )
        # reprolint: disable=REP010 - exact guard for a degenerate
        # zero-area query rectangle before fractional-overlap weighting.
        if clipped is None or rect.area == 0.0:
            return
        i_lo = self._clamp_i((clipped.x1 - self.bounds.x1) / self._cell_w)
        i_hi = self._clamp_i((clipped.x2 - self.bounds.x1) / self._cell_w, ceil=True)
        j_lo = self._clamp_i((clipped.y1 - self.bounds.y1) / self._cell_h)
        j_hi = self._clamp_i((clipped.y2 - self.bounds.y1) / self._cell_h, ceil=True)
        # Separable overlap: per-row and per-column overlap vectors whose
        # outer product is each cell's intersection area.  Element-wise
        # arithmetic and operation order match the former per-cell loop,
        # so accumulated fractions are bit-identical (cells with no
        # overlap contribute exactly +0.0).
        cell_x1 = self.bounds.x1 + np.arange(i_lo, i_hi, dtype=np.float64) * self._cell_w
        overlap_x = np.minimum(clipped.x2, cell_x1 + self._cell_w) - np.maximum(
            clipped.x1, cell_x1
        )
        cell_y1 = self.bounds.y1 + np.arange(j_lo, j_hi, dtype=np.float64) * self._cell_h
        overlap_y = np.minimum(clipped.y2, cell_y1 + self._cell_h) - np.maximum(
            clipped.y1, cell_y1
        )
        overlap_x = np.where(overlap_x > 0.0, overlap_x, 0.0)
        overlap_y = np.where(overlap_y > 0.0, overlap_y, 0.0)
        self.m[i_lo:i_hi, j_lo:j_hi] += (
            weight * np.outer(overlap_x, overlap_y) / rect.area
        )

    def _clamp_i(self, value: float, ceil: bool = False) -> int:
        """Clamp a fractional cell coordinate to a valid loop bound."""
        idx = int(np.ceil(value)) if ceil else int(np.floor(value))
        return min(max(idx, 0), self.alpha)

    # ------------------------------------------------------------------
    # Incremental maintenance from the update stream
    # ------------------------------------------------------------------

    def ingest_update(self, x: float, y: float, speed: float = 0.0) -> None:
        """Account one position update into the current accumulation window.

        Constant time, as the paper requires.  Callers implementing
        sampling simply invoke this for a subset of updates; the
        normalization happens in :meth:`roll`.
        """
        i, j = self._cell_of(x, y)
        self._acc_count[i, j] += 1.0
        self._acc_speed[i, j] += speed
        self._acc_touched[i, j] = True
        self._acc_updates += 1

    def ingest_updates(
        self, xs: np.ndarray, ys: np.ndarray, speeds: np.ndarray
    ) -> None:
        """Batched :meth:`ingest_update`: account a whole update batch.

        ``np.add.at`` applies the unbuffered accumulations in element
        order, so the resulting accumulators are bit-identical to
        calling :meth:`ingest_update` once per message in batch order.
        """
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        speeds = np.asarray(speeds, dtype=np.float64)
        if xs.size == 0:
            return
        i = ((xs - self.bounds.x1) / self._cell_w).astype(np.int64)
        j = ((ys - self.bounds.y1) / self._cell_h).astype(np.int64)
        np.clip(i, 0, self.alpha - 1, out=i)
        np.clip(j, 0, self.alpha - 1, out=j)
        np.add.at(self._acc_count, (i, j), 1.0)
        np.add.at(self._acc_speed, (i, j), speeds)
        self._acc_touched[i, j] = True
        self._acc_updates += int(xs.size)

    def roll(self, expected_updates_per_node: float = 1.0) -> None:
        """Swap the accumulation window into the live statistics.

        ``expected_updates_per_node`` converts raw update counts into
        node-count estimates (a node reporting k times in the window
        contributes k updates).  Mean speeds are per-update averages.

        Allocation-free: the statistics are finalized *inside* the
        accumulator buffers, which then become the live ``n``/``s``
        arrays, while the previous live buffers are zeroed and recycled
        as the next accumulation window (double buffering).  A
        reference to ``grid.n`` taken before a roll therefore aliases a
        future accumulator — copy it if it must survive the next window.
        """
        if expected_updates_per_node <= 0:
            raise ValueError("expected_updates_per_node must be positive")
        acc_count, acc_speed = self._acc_count, self._acc_speed
        # A cell's speed sum is zero wherever its update count is zero
        # (both accumulate together), so dividing by max(count, 1)
        # everywhere gives exactly the old where(count > 0, ...) result.
        with np.errstate(invalid="ignore", divide="ignore"):
            np.divide(acc_speed, np.maximum(acc_count, 1.0), out=acc_speed)
        acc_count /= expected_updates_per_node
        # Exact change tracking: a cell is dirty iff its finalized
        # window statistics differ from the live values they replace
        # (a previously occupied cell that received no updates goes to
        # zero and is caught here; a touched cell that finalized to the
        # same floats is *not* dirty).
        self._dirty |= (acc_count != self.n) | (acc_speed != self.s)
        previous_n, previous_s = self.n, self.s
        self.n, self.s = acc_count, acc_speed
        previous_n[:] = 0.0
        previous_s[:] = 0.0
        self._acc_count, self._acc_speed = previous_n, previous_s
        self._acc_touched[:] = False
        self._acc_updates = 0

    # ------------------------------------------------------------------
    # Dirty-cell tracking
    # ------------------------------------------------------------------

    @property
    def dirty_mask(self) -> np.ndarray:
        """Boolean α×α mask of cells changed since the last checkpoint.

        A cell is marked when its live ``n``/``m``/``s`` statistics
        change (exact float comparison at :meth:`roll` /
        :meth:`set_node_statistics` / :meth:`set_query_statistics`).
        Treat the returned array as read-only; call
        :meth:`consume_dirty` to checkpoint.
        """
        return self._dirty

    def consume_dirty(self) -> np.ndarray:
        """Return a copy of the dirty mask and reset it (checkpoint)."""
        mask = self._dirty.copy()
        self._dirty[:] = False
        return mask

    def mark_all_dirty(self) -> None:
        """Invalidate every cell (e.g. after mutating arrays in place)."""
        self._dirty[:] = True

    # ------------------------------------------------------------------
    # Cell geometry and aggregates
    # ------------------------------------------------------------------

    def cell_indices(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized (i, j) cell indices for positions of shape (n, 2)."""
        positions = np.asarray(positions, dtype=np.float64)
        ix = ((positions[:, 0] - self.bounds.x1) / self._cell_w).astype(np.int64)
        iy = ((positions[:, 1] - self.bounds.y1) / self._cell_h).astype(np.int64)
        np.clip(ix, 0, self.alpha - 1, out=ix)
        np.clip(iy, 0, self.alpha - 1, out=iy)
        return ix, iy

    def _cell_of(self, x: float, y: float) -> tuple[int, int]:
        i = int((x - self.bounds.x1) / self._cell_w)
        j = int((y - self.bounds.y1) / self._cell_h)
        return (
            min(max(i, 0), self.alpha - 1),
            min(max(j, 0), self.alpha - 1),
        )

    def cell_rect(self, i: int, j: int) -> Rect:
        """The geographic rectangle of cell ``(i, j)``."""
        if not (0 <= i < self.alpha and 0 <= j < self.alpha):
            raise IndexError(f"cell ({i}, {j}) outside {self.alpha}x{self.alpha} grid")
        x1 = self.bounds.x1 + i * self._cell_w
        y1 = self.bounds.y1 + j * self._cell_h
        return Rect(x1, y1, x1 + self._cell_w, y1 + self._cell_h)

    @property
    def total_nodes(self) -> float:
        """Total node count over all cells."""
        return float(self.n.sum())

    @property
    def total_queries(self) -> float:
        """Total (fractional) query count over all cells."""
        return float(self.m.sum())

    @property
    def mean_speed(self) -> float:
        """Node-weighted overall average speed ŝ."""
        total = self.n.sum()
        if total == 0:
            return 0.0
        return float((self.n * self.s).sum() / total)
