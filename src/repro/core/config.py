"""Configuration for the LIRA load shedder.

Defaults mirror the paper's Table 2: l = 250 shedding regions, α = 128
grid cells per side, z = 0.5, Δ⊢ = 5 m, Δ⊣ = 100 m, c_Δ = 1 m,
Δ⇔ = 50 m.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def auto_alpha(l: int, x: float = 10.0) -> int:
    """The paper's α sizing rule: ``α = 2^⌊log2(x·√l)⌋`` (Section 3.2.5).

    ``x = 10`` gives ~100x area flexibility between the smallest possible
    shedding region of the (α, l)-partitioning and an equal-size region
    of the plain l-partitioning.
    """
    if l < 1:
        raise ValueError("l must be >= 1")
    if x <= 0:
        raise ValueError("x must be positive")
    return max(1, 2 ** int(math.floor(math.log2(x * math.sqrt(l)))))


@dataclass(frozen=True)
class LiraConfig:
    """All knobs of the LIRA load shedder (paper Table 2 defaults).

    Attributes:
        l: number of shedding regions (effective count rounds down to
            ``1 + 3k``; see :func:`~repro.core.gridreduce.effective_region_count`).
        alpha: statistics-grid side cell count; ``None`` applies the
            paper's sizing rule :func:`auto_alpha` with ``grid_factor``.
        z: throttle fraction (update budget), in [0, 1].
        delta_min: Δ⊢, the ideal position-update resolution (meters).
        delta_max: Δ⊣, the lowest acceptable resolution (meters).
        increment: c_Δ, the greedy step / piecewise-segment size (meters).
        fairness: Δ⇔, max allowed difference between throttlers
            (``None`` disables; 0 degenerates to uniform Δ).
        use_speed: apply the speed-factor correction to the budget.
        grid_factor: the ``x`` of the α sizing rule.
    """

    l: int = 250
    alpha: int | None = 128
    z: float = 0.5
    delta_min: float = 5.0
    delta_max: float = 100.0
    increment: float = 1.0
    fairness: float | None = 50.0
    use_speed: bool = True
    grid_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.l < 1:
            raise ValueError("l must be >= 1")
        if not (0.0 <= self.z <= 1.0):
            raise ValueError("z must be in [0, 1]")
        if self.delta_min < 0 or self.delta_max <= self.delta_min:
            raise ValueError("require 0 <= delta_min < delta_max")
        if self.increment <= 0:
            raise ValueError("increment must be positive")
        if self.fairness is not None and self.fairness < 0:
            raise ValueError("fairness must be non-negative (or None)")
        alpha = self.resolved_alpha
        if alpha < 1 or alpha & (alpha - 1) != 0:
            raise ValueError(f"alpha must be a power of two, got {alpha}")

    @property
    def resolved_alpha(self) -> int:
        """α, applying the sizing rule when not set explicitly."""
        if self.alpha is not None:
            return self.alpha
        return auto_alpha(self.l, self.grid_factor)

    @property
    def n_segments(self) -> int:
        """κ, the number of piecewise-linear segments of f."""
        return max(1, int(round((self.delta_max - self.delta_min) / self.increment)))
