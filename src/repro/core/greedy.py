"""GREEDYINCREMENT: optimal update-throttler setting (Algorithm 2).

Given ``l`` shedding regions with statistics ``(nᵢ, mᵢ, sᵢ)``, a
piecewise-linear update-reduction function ``f`` with segment size c_Δ,
and a throttle fraction ``z``, find throttlers Δᵢ minimizing the query
inaccuracy ``Σ mᵢ·Δᵢ`` subject to the update-budget constraint
``Σ nᵢ·sᵢ·f(Δᵢ) ≤ z·Σ nᵢ·sᵢ·f(Δ⊢)`` and the fairness constraint
``|Δᵢ − Δⱼ| ≤ Δ⇔``.

The algorithm starts all throttlers at Δ⊢ and repeatedly increments the
throttler with the highest *update gain* ``Sᵢ = (nᵢ/mᵢ)·sᵢ·r(Δᵢ)`` by one
segment (or less, to land exactly on the budget or on a fairness limit).
Theorem 3.1: for c_Δ equal to the segment size this is optimal for the
piecewise-linear ``f`` — property-tested against brute force in the test
suite.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.geo import Rect
from repro.core.reduction import PiecewiseLinearReduction, ReductionFunction

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class RegionStats:
    """Statistics of one shedding region, as produced by partitioning."""

    rect: Rect
    n: float
    m: float
    s: float


@dataclass
class GreedyResult:
    """Outcome of a GREEDYINCREMENT run.

    ``thresholds[i]`` is Δᵢ for region ``i`` (input order).
    ``budget_met`` is False only when even ``∀i Δᵢ = Δ⊣`` cannot reach
    the budget, in which case thresholds are all Δ⊣ for sheddable
    regions (the paper's fallback solution).
    """

    thresholds: np.ndarray
    expenditure: float
    budget: float
    inaccuracy: float
    steps: int
    budget_met: bool


class _MinMultiset:
    """Multiset over floats with O(log n) update and O(1) amortized min.

    Backed by a heap with lazy deletion; stands in for the paper's
    "sorted tree of update throttlers" used to track Δ⊳ = min Δⱼ.
    """

    def __init__(self, values) -> None:
        self._heap = list(map(float, values))
        heapq.heapify(self._heap)
        live: dict[float, int] = {}
        for v in self._heap:
            live[v] = live.get(v, 0) + 1
        self._live = live

    def update(self, old: float, new: float) -> None:
        old, new = float(old), float(new)
        live = self._live
        count = live.get(old, 0)
        if count <= 0:
            raise KeyError(f"value {old} not present")
        live[old] = count - 1
        live[new] = live.get(new, 0) + 1
        heapq.heappush(self._heap, new)

    def min(self) -> float:
        heap = self._heap
        live = self._live
        while heap and live.get(heap[0], 0) <= 0:
            heapq.heappop(heap)
        if not heap:
            raise ValueError("multiset is empty")
        return heap[0]


def greedy_increment(
    regions: list[RegionStats],
    reduction: ReductionFunction,
    z: float,
    increment: float | None = None,
    fairness: float | None = None,
    use_speed: bool = True,
    engine: str = "object",
) -> GreedyResult:
    """Run GREEDYINCREMENT over ``regions``.

    ``increment`` (c_Δ) defaults to the reduction function's segment size
    when it is already piecewise linear; otherwise the function is
    discretized into segments of size ``increment`` first.  ``fairness``
    is Δ⇔ (``None`` disables the constraint; ``0`` forces the uniform-Δ
    solution, the paper's degenerate case).  ``engine="vector"`` runs
    the array kernel in :mod:`repro.core.greedy_vector`, bit-identical
    to this reference loop.
    """
    if not regions:
        raise ValueError("at least one region is required")
    if not (0.0 <= z <= 1.0):
        raise ValueError("throttle fraction z must be in [0, 1]")
    if engine not in ("object", "vector"):
        raise ValueError(f"unknown greedy engine {engine!r}")
    pw = _as_piecewise(reduction, increment)
    if engine == "vector":
        from repro.core.greedy_vector import greedy_increment_vector

        return greedy_increment_vector(regions, pw, z, fairness, use_speed)
    d_min, d_max = pw.delta_min, pw.delta_max
    seg = pw.segment_size
    l = len(regions)

    weights = _region_weights(regions, use_speed)
    m = np.array([reg.m for reg in regions], dtype=np.float64)

    # Expenditure and budget (f(Δ⊢) = 1 by normalization).
    total_weight = float(weights.sum())
    budget = z * total_weight

    if fairness is not None and fairness <= 0.0:
        return _uniform_solution(pw, z, weights, m)
    # Resolution floor: a positive Δ⇔ far below the Δ domain forces the
    # march into lockstep — every round advances all l regions by Δ⇔, so
    # reaching the optimum takes O((Δ⊣ - Δ⊢) / Δ⇔ · l) heap operations
    # (unbounded as Δ⇔ → 0) to refine the uniform solution by less than
    # the floor itself.  Treat such spacings as the Δ⇔ = 0 limit.
    if fairness is not None and fairness < (d_max - d_min) * 1e-4:
        return _uniform_solution(pw, z, weights, m)

    deltas = np.full(l, d_min, dtype=np.float64)
    expenditure = total_weight
    if expenditure <= budget + _EPS:
        return GreedyResult(
            thresholds=deltas,
            expenditure=expenditure,
            budget=budget,
            inaccuracy=float((m * deltas).sum()),
            steps=0,
            budget_met=True,
        )

    # The increment loop runs thousands of scalar reads per adapt step;
    # plain-float lists sidestep numpy scalar-indexing overhead.  The
    # arithmetic (and hence every threshold) is bit-identical.
    w_l = weights.tolist()
    m_l = m.tolist()
    deltas_l = deltas.tolist()

    minima = _MinMultiset(deltas_l)
    heap: list[tuple[float, int, int]] = []
    counter = 0
    blocked: dict[int, bool] = {}

    r = pw.r

    def gain(i: int, delta: float, w_l=w_l, m_l=m_l, r=r, min=min) -> float:
        rate = w_l[i] * r(delta)
        # Subnormal query counts behave as zero: the gain is unbounded.
        if m_l[i] > 1e-300:
            return min(rate / m_l[i], 1e300)
        return math.inf if rate > 0 else 0.0

    for i in range(l):
        if w_l[i] <= 0:
            continue  # incrementing cannot reduce expenditure; keep Δ⊢
        heapq.heappush(heap, (-gain(i, d_min), counter, i))
        counter += 1

    steps = 0
    while expenditure > budget + _EPS and heap:
        _, _, i = heapq.heappop(heap)
        old = deltas_l[i]
        current_min = minima.min()
        next_knot = d_min + seg * (math.floor((old - d_min) / seg + 1e-7) + 1)
        target = min(next_knot, d_max)
        if fairness is not None:
            target = min(target, current_min + fairness)
        step = target - old
        if step <= _EPS:
            # Already at the fairness limit: park in the blocked list.
            blocked[i] = True
            continue
        rate = w_l[i] * r(old)
        if rate > 1e-300:
            step = min(step, (expenditure - budget) / rate)
        new = old + step
        expenditure -= rate * step
        deltas_l[i] = new
        minima.update(old, new)
        steps += 1

        at_limit = fairness is not None and new >= minima.min() + fairness - _EPS
        if new >= d_max - _EPS:
            pass  # throttler maxed out; retired
        elif at_limit:
            blocked[i] = True
        else:
            heapq.heappush(heap, (-gain(i, new), counter, i))
            counter += 1

        new_min = minima.min()
        if fairness is not None and new_min > current_min + _EPS and blocked:
            for j in list(blocked):
                if deltas_l[j] < new_min + fairness - _EPS:
                    del blocked[j]
                    heapq.heappush(heap, (-gain(j, deltas_l[j]), counter, j))
                    counter += 1

    deltas = np.array(deltas_l, dtype=np.float64)
    return GreedyResult(
        thresholds=deltas,
        expenditure=expenditure,
        budget=budget,
        inaccuracy=float((m * deltas).sum()),
        steps=steps,
        budget_met=expenditure <= budget + max(_EPS, 1e-9 * max(total_weight, 1.0)),
    )


def _region_weights(regions: list[RegionStats], use_speed: bool) -> np.ndarray:
    """Per-region expenditure weights nᵢ·sᵢ (speed factor) or nᵢ.

    If speeds are requested but uniformly zero (e.g. a static snapshot),
    fall back to plain node counts so the budget stays meaningful.
    """
    n = np.array([reg.n for reg in regions], dtype=np.float64)
    if not use_speed:
        return n
    s = np.array([reg.s for reg in regions], dtype=np.float64)
    weights = n * s
    if weights.sum() <= 0 < n.sum():
        return n
    return weights


def _uniform_solution(
    pw: PiecewiseLinearReduction, z: float, weights: np.ndarray, m: np.ndarray
) -> GreedyResult:
    """Δ⇔ = 0 degenerate case: all throttlers equal (uniform Δ)."""
    delta = pw.delta_for_fraction(z)
    total_weight = float(weights.sum())
    thresholds = np.full(len(weights), delta, dtype=np.float64)
    expenditure = total_weight * pw.f(delta)
    return GreedyResult(
        thresholds=thresholds,
        expenditure=expenditure,
        budget=z * total_weight,
        inaccuracy=float((m * thresholds).sum()),
        steps=0,
        budget_met=expenditure <= z * total_weight + _EPS,
    )


def _as_piecewise(
    reduction: ReductionFunction, increment: float | None
) -> PiecewiseLinearReduction:
    """Coerce the reduction function to the piecewise-linear form greedy needs."""
    span = reduction.delta_max - reduction.delta_min
    if isinstance(reduction, PiecewiseLinearReduction):
        if increment is None or math.isclose(increment, reduction.segment_size):
            return reduction
    if increment is None:
        raise ValueError(
            "increment (c_delta) is required when the reduction function is "
            "not already piecewise linear with the desired segment size"
        )
    n_segments = max(1, int(round(span / increment)))
    return reduction.piecewise(n_segments)
