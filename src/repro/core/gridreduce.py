"""GRIDREDUCE: region-aware partitioning of the monitoring space (Algorithm 1).

Stage I (the region hierarchy) lives in :mod:`repro.core.quadtree`; this
module implements Stage II: starting from the root (the whole space),
repeatedly split the explored region with the highest *accuracy gain*
into its four quadrants until ``l`` shedding regions exist.

The accuracy gain ``V[t] = E[t] − E_p[t]`` of a node compares the
optimal query inaccuracy with one shedding region covering ``t``
(``E``) against four shedding regions at ``t``'s children (``E_p``),
both under the same proportional update budget — each computed by
solving the throttler-setting problem with GREEDYINCREMENT (CALCERRGAIN
in the paper).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.greedy import RegionStats, greedy_increment
from repro.core.incremental import (
    GridReduceTrajectory,
    IncrementalGridReduceCache,
)
from repro.core.quadtree import RegionHierarchy, RegionNode
from repro.core.reduction import PiecewiseLinearReduction, ReductionFunction

if TYPE_CHECKING:
    from collections.abc import Callable

    import numpy as np

    from repro.core.statistics_grid import StatisticsGrid
    from repro.geo import Rect


@dataclass
class PartitioningResult:
    """Output of GRIDREDUCE: the shedding regions with their statistics."""

    regions: list[RegionStats]
    nodes: list[RegionNode]
    expansions: int

    @property
    def num_regions(self) -> int:
        return len(self.regions)


def effective_region_count(l: int) -> int:
    """Largest ``l' <= l`` with ``l' mod 3 == 1`` (and ``l' >= 1``).

    Each quadrant expansion replaces one region with four, so reachable
    region counts are exactly ``1 + 3k``; requests in between round down.
    """
    if l < 1:
        raise ValueError("l must be >= 1")
    return l - ((l - 1) % 3)


def calc_err_gain(
    hierarchy: RegionHierarchy,
    node: RegionNode,
    z: float,
    reduction: ReductionFunction,
    increment: float | None = None,
    use_speed: bool = True,
) -> float:
    """Accuracy gain ``V[t]`` of splitting ``node`` into its quadrants.

    ``E``: inaccuracy with one region (smallest Δ meeting ``f(Δ) <= z``).
    ``E_p``: inaccuracy with the four child regions sharing the node's
    proportional budget, solved by GREEDYINCREMENT.  Leaves cannot be
    split and have gain 0.
    """
    if hierarchy.is_leaf(node):
        return 0.0
    if node.m <= 0.0 or node.n <= 0.0:
        # No queries to protect, or no updates to shed: splitting cannot
        # change the achievable inaccuracy.
        return 0.0
    single_delta = reduction.delta_for_fraction(z)
    e_single = node.m * single_delta
    children = hierarchy.children(node)
    child_stats = [
        RegionStats(rect=c.rect, n=c.n, m=c.m, s=c.s) for c in children
    ]
    result = greedy_increment(
        child_stats,
        reduction,
        z,
        increment=increment,
        fairness=None,
        use_speed=use_speed,
    )
    return max(0.0, e_single - result.inaccuracy)


def _calc_err_gain_batch(
    hierarchy: RegionHierarchy,
    nodes: list[RegionNode],
    z: float,
    reduction: ReductionFunction,
    pw: PiecewiseLinearReduction,
    use_speed: bool,
) -> list[float]:
    """CALCERRGAIN for several candidate nodes in one array pass.

    The vector engine's counterpart of :func:`calc_err_gain`: all
    four-child throttler problems of one expansion share a single
    sort/accumulate kernel invocation
    (:func:`repro.core.greedy_vector.greedy_increment_arrays`), which
    is bit-identical to the per-node reference loop.
    """
    import numpy as np

    from repro.core.greedy_vector import greedy_increment_arrays

    gains = [0.0] * len(nodes)
    which = [
        t
        for t, node in enumerate(nodes)
        if not (hierarchy.is_leaf(node) or node.m <= 0.0 or node.n <= 0.0)
    ]
    if not which:
        return gains
    single_delta = reduction.delta_for_fraction(z)
    # Gather each candidate's four child statistics straight from the
    # hierarchy's level arrays (row-major 2x2 block order, matching
    # RegionHierarchy.children) — no RegionNode/RegionStats boxing.
    by_level: dict[int, list[int]] = {}
    for t in which:
        by_level.setdefault(nodes[t].level + 1, []).append(t)
    di = np.array([0, 0, 1, 1])
    dj = np.array([0, 1, 0, 1])
    for child_level, ts in by_level.items():
        n_lv, m_lv, s_lv = hierarchy.level_stats(child_level)
        ii = np.array([[2 * nodes[t].i] for t in ts]) + di
        jj = np.array([[2 * nodes[t].j] for t in ts]) + dj
        results = greedy_increment_arrays(
            n_lv[ii, jj], m_lv[ii, jj], s_lv[ii, jj], pw, z, use_speed
        )
        for t, result in zip(ts, results):
            gains[t] = max(0.0, nodes[t].m * single_delta - result.inaccuracy)
    return gains


def _gather_keys(
    hierarchy: RegionHierarchy, level: int, ii: "np.ndarray", jj: "np.ndarray"
) -> "np.ndarray":
    """``(len, KEY_WIDTH)`` gain-key matrix for non-leaf nodes at one level.

    Row layout: the node's own ``(n, m, s)`` followed by the same triple
    for each child in row-major 2×2 order — the exact float inputs
    CALCERRGAIN reads, so two rounds gathering equal rows produce
    bit-identical gains regardless of engine.
    """
    import numpy as np

    n0, m0, s0 = hierarchy.level_stats(level)
    n1, m1, s1 = hierarchy.level_stats(level + 1)
    i2, j2 = 2 * ii, 2 * jj
    cols = [n0[ii, jj], m0[ii, jj], s0[ii, jj]]
    for di, dj in ((0, 0), (0, 1), (1, 0), (1, 1)):
        ic, jc = i2 + di, j2 + dj
        cols.extend((n1[ic, jc], m1[ic, jc], s1[ic, jc]))
    return np.stack(cols, axis=1)


def _vector_coord_kernel(
    hierarchy: RegionHierarchy,
    z: float,
    reduction: ReductionFunction,
    pw: PiecewiseLinearReduction,
    use_speed: bool,
):
    """Gain kernel scoring coordinate groups in ONE array-kernel call.

    The flattened counterpart of :func:`_calc_err_gain_batch`: child
    statistics from *all* levels concatenate into a single
    ``greedy_increment_arrays`` invocation (problems are solved
    independently, so batch composition cannot change any result),
    eliminating the per-level kernel dispatch overhead on the
    incremental path's small miss batches.
    """
    import numpy as np

    from repro.core.greedy_vector import greedy_increment_arrays

    def kernel(groups) -> "np.ndarray":
        total = sum(len(ii) for _, ii, _ in groups)
        gains = np.zeros(total, dtype=np.float64)
        node_n = np.empty(total, dtype=np.float64)
        node_m = np.empty(total, dtype=np.float64)
        n4 = np.empty((total, 4), dtype=np.float64)
        m4 = np.empty((total, 4), dtype=np.float64)
        s4 = np.empty((total, 4), dtype=np.float64)
        offset = 0
        for level, ii, jj in groups:
            sl = slice(offset, offset + len(ii))
            n0, m0, _ = hierarchy.level_stats(level)
            n1, m1, s1 = hierarchy.level_stats(level + 1)
            node_n[sl] = n0[ii, jj]
            node_m[sl] = m0[ii, jj]
            i2, j2 = 2 * ii, 2 * jj
            for c, (di, dj) in enumerate(((0, 0), (0, 1), (1, 0), (1, 1))):
                ic, jc = i2 + di, j2 + dj
                n4[sl, c] = n1[ic, jc]
                m4[sl, c] = m1[ic, jc]
                s4[sl, c] = s1[ic, jc]
            offset += len(ii)
        # calc_err_gain's eligibility guard: no queries to protect or no
        # updates to shed means splitting cannot help — gain exactly 0.
        eligible = (node_m > 0.0) & (node_n > 0.0)
        if eligible.any():
            results = greedy_increment_arrays(
                n4[eligible], m4[eligible], s4[eligible], pw, z, use_speed
            )
            single_delta = reduction.delta_for_fraction(z)
            inaccuracy = np.array(
                [r.inaccuracy for r in results], dtype=np.float64
            )
            gains[eligible] = np.maximum(
                0.0, node_m[eligible] * single_delta - inaccuracy
            )
        return gains

    return kernel


def _object_coord_kernel(
    hierarchy: RegionHierarchy,
    z: float,
    reduction: ReductionFunction,
    increment: float | None,
    use_speed: bool,
):
    """Reference-engine gain kernel over coordinate groups."""
    import numpy as np

    def kernel(groups) -> "np.ndarray":
        out: list[float] = []
        for level, ii, jj in groups:
            for i, j in zip(ii.tolist(), jj.tolist()):
                out.append(
                    calc_err_gain(
                        hierarchy,
                        hierarchy.node(level, i, j),
                        z,
                        reduction,
                        increment=increment,
                        use_speed=use_speed,
                    )
                )
        return np.array(out, dtype=np.float64)

    return kernel


def _group_coords(coords, leaf_level: int):
    """Group ``(level, i, j)`` coordinates into per-level index arrays.

    Leaf coordinates are dropped — leaves always have gain 0 and bypass
    the memo entirely.
    """
    import numpy as np

    by_level: dict[int, tuple[list[int], list[int]]] = {}
    for level, i, j in coords:
        if level == leaf_level:
            continue
        ii, jj = by_level.setdefault(level, ([], []))
        ii.append(i)
        jj.append(j)
    return [
        (level, np.array(ii, dtype=np.intp), np.array(jj, dtype=np.intp))
        for level, (ii, jj) in by_level.items()
    ]


def _memoized_score(
    hierarchy: RegionHierarchy,
    cache: IncrementalGridReduceCache,
    kernel,
    groups,
) -> None:
    """Resolve gains for coordinate groups through the value-validated memo.

    Clean nodes (gathered key bit-equal to the stored one) read their
    memoized gain; dirty or never-seen nodes re-solve through ``kernel``
    in one batched call and refresh their memo rows.  Every resolved
    gain lands in ``cache.round_gains`` for O(1) heap-loop lookups.
    Stale entries can never survive a statistics change — the key *is*
    the gain's full input — so no invalidation bookkeeping exists.
    """
    miss_groups = []
    for level, ii, jj in groups:
        if len(ii) == 0:
            continue
        keys = _gather_keys(hierarchy, level, ii, jj)
        store = cache.level_store(level)
        if store is None:
            # Level too deep to memoize: everything misses.
            miss_groups.append((level, ii, jj, keys, None))
            continue
        stored_keys, stored_gains, valid = store
        hit = valid[ii, jj] & (keys == stored_keys[ii, jj]).all(axis=1)
        cache.hits += int(hit.sum())
        ii_hit, jj_hit = ii[hit], jj[hit]
        for coord_i, coord_j, gain in zip(
            ii_hit.tolist(), jj_hit.tolist(), stored_gains[ii_hit, jj_hit].tolist()
        ):
            cache.round_gains[(level, coord_i, coord_j)] = gain
        miss = ~hit
        if miss.any():
            miss_groups.append((level, ii[miss], jj[miss], keys[miss], store))
    if not miss_groups:
        return
    cache.misses += sum(len(ii) for _, ii, _, _, _ in miss_groups)
    gains = kernel([(level, ii, jj) for level, ii, jj, _, _ in miss_groups])
    offset = 0
    for level, ii, jj, keys, store in miss_groups:
        sl = slice(offset, offset + len(ii))
        level_gains = gains[sl]
        if store is not None:
            stored_keys, stored_gains, valid = store
            stored_keys[ii, jj] = keys
            stored_gains[ii, jj] = level_gains
            valid[ii, jj] = True
        for coord_i, coord_j, gain in zip(
            ii.tolist(), jj.tolist(), level_gains.tolist()
        ):
            cache.round_gains[(level, coord_i, coord_j)] = gain
        offset += len(ii)


def _memoized_gains(
    hierarchy: RegionHierarchy,
    cache: IncrementalGridReduceCache,
    kernel,
) -> "Callable[[list[RegionNode]], list[float]]":
    """Node-batch gain scorer backed by the coordinate memo.

    Leaves bypass everything (their gain is identically 0, matching
    :func:`calc_err_gain`); other nodes read ``round_gains`` — filled by
    the trajectory prepass — and only coordinates the prepass did not
    anticipate fall through to a memo probe + kernel batch.
    """

    def gains_of(batch: list[RegionNode]) -> list[float]:
        gains = [0.0] * len(batch)
        missing: list[int] = []
        for idx, node in enumerate(batch):
            if hierarchy.is_leaf(node):
                continue
            gain = cache.round_gains.get((node.level, node.i, node.j))
            if gain is not None:
                gains[idx] = gain
            else:
                missing.append(idx)
        if missing:
            _memoized_score(
                hierarchy,
                cache,
                kernel,
                _group_coords(
                    [
                        (batch[idx].level, batch[idx].i, batch[idx].j)
                        for idx in missing
                    ],
                    hierarchy.depth,
                ),
            )
            for idx in missing:
                node = batch[idx]
                gains[idx] = cache.round_gains[(node.level, node.i, node.j)]
        return gains

    return gains_of


def grid_reduce(
    hierarchy: RegionHierarchy,
    l: int,
    z: float,
    reduction: ReductionFunction,
    increment: float | None = None,
    use_speed: bool = True,
    engine: str = "object",
    cache: IncrementalGridReduceCache | None = None,
) -> PartitioningResult:
    """Compute the ``(α, l)``-partitioning of the space.

    Maintains a max-heap of explored nodes keyed by accuracy gain; each
    step pops the best node and replaces it with its four quadrants.
    Nodes that are statistics-grid cells (leaves) can no longer be split
    and are set aside.  Stops at ``effective_region_count(l)`` regions,
    or earlier if every remaining region is a leaf.

    ``engine="vector"`` scores each expansion's children with the
    batched array kernel instead of per-node scalar greedy loops; the
    resulting partitioning is bit-identical.

    ``cache`` (incremental mode) memoizes per-node gains across calls,
    keyed on each node's exact aggregate statistics, and replays the
    previous run's expansion trajectory by pre-scoring its whole heap
    push sequence in one batch — so a round whose statistics drift only
    touched a few hierarchy nodes re-solves GREEDYINCREMENT for those
    nodes alone.  Results are bit-identical with and without a cache;
    the caller must pass a cache dedicated to this (hierarchy,
    reduction, increment, use_speed) combination (``z`` may vary — the
    cache self-invalidates on change).
    """
    if isinstance(reduction, PiecewiseLinearReduction) and increment is None:
        increment = reduction.segment_size
    if engine not in ("object", "vector"):
        raise ValueError(f"unknown gridreduce engine {engine!r}")
    target = effective_region_count(l)

    if engine == "vector":
        from repro.core.greedy import _as_piecewise

        pw = _as_piecewise(reduction, increment)

        def base_gains_of(batch: list[RegionNode]) -> list[float]:
            return _calc_err_gain_batch(
                hierarchy, batch, z, reduction, pw, use_speed
            )

    else:

        def base_gains_of(batch: list[RegionNode]) -> list[float]:
            return [
                calc_err_gain(
                    hierarchy, node, z, reduction,
                    increment=increment, use_speed=use_speed,
                )
                for node in batch
            ]

    if cache is not None:
        cache.reset_for_z(z)
        cache.round_gains = {}
        if engine == "vector":
            kernel = _vector_coord_kernel(hierarchy, z, reduction, pw, use_speed)
        else:
            kernel = _object_coord_kernel(
                hierarchy, z, reduction, increment, use_speed
            )
        gains_of = _memoized_gains(hierarchy, cache, kernel)
        if cache.trajectory is not None:
            # Expansion replay shortcut: score the previous run's whole
            # push sequence up front, straight from coordinates.  Clean
            # nodes hit the memo; dirty ones re-solve in one batched
            # kernel call instead of one call per expansion.  If the pop
            # sequence then deviates, the loop below still scores any
            # new nodes on demand.
            _memoized_score(
                hierarchy,
                cache,
                kernel,
                _group_coords(cache.trajectory.scored, hierarchy.depth),
            )
    else:
        gains_of = base_gains_of

    counter = 0
    heap: list[tuple[float, int, RegionNode]] = []
    scored: list[tuple[int, int, int]] = []
    root = hierarchy.root
    heapq.heappush(heap, (-gains_of([root])[0], counter, root))
    scored.append((root.level, root.i, root.j))
    counter += 1
    finished: list[RegionNode] = []
    expansions = 0

    while len(finished) + len(heap) < target and heap:
        _, _, node = heapq.heappop(heap)
        if hierarchy.is_leaf(node):
            finished.append(node)
            continue
        children = list(hierarchy.children(node))
        for child, child_gain in zip(children, gains_of(children)):
            heapq.heappush(heap, (-child_gain, counter, child))
            scored.append((child.level, child.i, child.j))
            counter += 1
        expansions += 1

    nodes = finished + [entry[2] for entry in heap]
    # Canonical region order: the partitioning is a *set* of nodes; the
    # heap's pop order is an implementation detail that permutes with
    # infinitesimal gain changes.  Sorting by quad-tree coordinate makes
    # plan region order a pure function of the partition, so two rounds
    # choosing the same cut produce positionally identical plans — the
    # property `SheddingPlan.same_geometry` (and thus the delta
    # broadcast path) keys on.
    nodes.sort(key=lambda n: (n.level, n.i, n.j))
    regions = [RegionStats(rect=n.rect, n=n.n, m=n.m, s=n.s) for n in nodes]
    if cache is not None:
        cache.trajectory = GridReduceTrajectory(
            scored=scored,
            result=[(n.level, n.i, n.j) for n in nodes],
            expansions=expansions,
        )
    return PartitioningResult(regions=regions, nodes=nodes, expansions=expansions)


def uniform_partitioning(grid, l: int) -> PartitioningResult:
    """The paper's *l-partitioning*: a uniform √l × √l grid of regions.

    Used by the Lira-Grid baseline.  ``k = floor(√l)`` regions per side;
    region boundaries are snapped to statistics-grid cell boundaries
    (cell ``i`` belongs to region ``floor(i·k/α)``), so statistics
    aggregate exactly.  ``grid`` is a
    :class:`~repro.core.statistics_grid.StatisticsGrid`.
    """

    if l < 1:
        raise ValueError("l must be >= 1")
    alpha = grid.alpha
    k = min(max(int(l**0.5), 1), alpha)
    # Cell index boundaries of the k blocks along one axis.
    edges = [int(round(b * alpha / k)) for b in range(k + 1)]
    regions: list[RegionStats] = []
    for bi in range(k):
        i_lo, i_hi = edges[bi], edges[bi + 1]
        for bj in range(k):
            j_lo, j_hi = edges[bj], edges[bj + 1]
            n_block = grid.n[i_lo:i_hi, j_lo:j_hi]
            m_block = grid.m[i_lo:i_hi, j_lo:j_hi]
            s_block = grid.s[i_lo:i_hi, j_lo:j_hi]
            n_total = float(n_block.sum())
            momentum = float((n_block * s_block).sum())
            s_mean = momentum / n_total if n_total > 0 else 0.0
            rect = _block_rect(grid, i_lo, i_hi, j_lo, j_hi)
            regions.append(
                RegionStats(rect=rect, n=n_total, m=float(m_block.sum()), s=s_mean)
            )
    return PartitioningResult(regions=regions, nodes=[], expansions=0)


def _block_rect(
    grid: StatisticsGrid, i_lo: int, i_hi: int, j_lo: int, j_hi: int
) -> Rect:
    """Geographic rectangle of a block of statistics-grid cells."""
    from repro.geo import Rect

    cell_w = grid.bounds.width / grid.alpha
    cell_h = grid.bounds.height / grid.alpha
    return Rect(
        grid.bounds.x1 + i_lo * cell_w,
        grid.bounds.y1 + j_lo * cell_h,
        grid.bounds.x1 + i_hi * cell_w,
        grid.bounds.y1 + j_hi * cell_h,
    )
