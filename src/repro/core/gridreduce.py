"""GRIDREDUCE: region-aware partitioning of the monitoring space (Algorithm 1).

Stage I (the region hierarchy) lives in :mod:`repro.core.quadtree`; this
module implements Stage II: starting from the root (the whole space),
repeatedly split the explored region with the highest *accuracy gain*
into its four quadrants until ``l`` shedding regions exist.

The accuracy gain ``V[t] = E[t] − E_p[t]`` of a node compares the
optimal query inaccuracy with one shedding region covering ``t``
(``E``) against four shedding regions at ``t``'s children (``E_p``),
both under the same proportional update budget — each computed by
solving the throttler-setting problem with GREEDYINCREMENT (CALCERRGAIN
in the paper).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.greedy import RegionStats, greedy_increment
from repro.core.quadtree import RegionHierarchy, RegionNode
from repro.core.reduction import PiecewiseLinearReduction, ReductionFunction

if TYPE_CHECKING:
    from repro.core.statistics_grid import StatisticsGrid
    from repro.geo import Rect


@dataclass
class PartitioningResult:
    """Output of GRIDREDUCE: the shedding regions with their statistics."""

    regions: list[RegionStats]
    nodes: list[RegionNode]
    expansions: int

    @property
    def num_regions(self) -> int:
        return len(self.regions)


def effective_region_count(l: int) -> int:
    """Largest ``l' <= l`` with ``l' mod 3 == 1`` (and ``l' >= 1``).

    Each quadrant expansion replaces one region with four, so reachable
    region counts are exactly ``1 + 3k``; requests in between round down.
    """
    if l < 1:
        raise ValueError("l must be >= 1")
    return l - ((l - 1) % 3)


def calc_err_gain(
    hierarchy: RegionHierarchy,
    node: RegionNode,
    z: float,
    reduction: ReductionFunction,
    increment: float | None = None,
    use_speed: bool = True,
) -> float:
    """Accuracy gain ``V[t]`` of splitting ``node`` into its quadrants.

    ``E``: inaccuracy with one region (smallest Δ meeting ``f(Δ) <= z``).
    ``E_p``: inaccuracy with the four child regions sharing the node's
    proportional budget, solved by GREEDYINCREMENT.  Leaves cannot be
    split and have gain 0.
    """
    if hierarchy.is_leaf(node):
        return 0.0
    if node.m <= 0.0 or node.n <= 0.0:
        # No queries to protect, or no updates to shed: splitting cannot
        # change the achievable inaccuracy.
        return 0.0
    single_delta = reduction.delta_for_fraction(z)
    e_single = node.m * single_delta
    children = hierarchy.children(node)
    child_stats = [
        RegionStats(rect=c.rect, n=c.n, m=c.m, s=c.s) for c in children
    ]
    result = greedy_increment(
        child_stats,
        reduction,
        z,
        increment=increment,
        fairness=None,
        use_speed=use_speed,
    )
    return max(0.0, e_single - result.inaccuracy)


def _calc_err_gain_batch(
    hierarchy: RegionHierarchy,
    nodes: list[RegionNode],
    z: float,
    reduction: ReductionFunction,
    pw: PiecewiseLinearReduction,
    use_speed: bool,
) -> list[float]:
    """CALCERRGAIN for several candidate nodes in one array pass.

    The vector engine's counterpart of :func:`calc_err_gain`: all
    four-child throttler problems of one expansion share a single
    sort/accumulate kernel invocation
    (:func:`repro.core.greedy_vector.greedy_increment_arrays`), which
    is bit-identical to the per-node reference loop.
    """
    import numpy as np

    from repro.core.greedy_vector import greedy_increment_arrays

    gains = [0.0] * len(nodes)
    which = [
        t
        for t, node in enumerate(nodes)
        if not (hierarchy.is_leaf(node) or node.m <= 0.0 or node.n <= 0.0)
    ]
    if not which:
        return gains
    single_delta = reduction.delta_for_fraction(z)
    # Gather each candidate's four child statistics straight from the
    # hierarchy's level arrays (row-major 2x2 block order, matching
    # RegionHierarchy.children) — no RegionNode/RegionStats boxing.
    by_level: dict[int, list[int]] = {}
    for t in which:
        by_level.setdefault(nodes[t].level + 1, []).append(t)
    di = np.array([0, 0, 1, 1])
    dj = np.array([0, 1, 0, 1])
    for child_level, ts in by_level.items():
        n_lv, m_lv, s_lv = hierarchy.level_stats(child_level)
        ii = np.array([[2 * nodes[t].i] for t in ts]) + di
        jj = np.array([[2 * nodes[t].j] for t in ts]) + dj
        results = greedy_increment_arrays(
            n_lv[ii, jj], m_lv[ii, jj], s_lv[ii, jj], pw, z, use_speed
        )
        for t, result in zip(ts, results):
            gains[t] = max(0.0, nodes[t].m * single_delta - result.inaccuracy)
    return gains


def grid_reduce(
    hierarchy: RegionHierarchy,
    l: int,
    z: float,
    reduction: ReductionFunction,
    increment: float | None = None,
    use_speed: bool = True,
    engine: str = "object",
) -> PartitioningResult:
    """Compute the ``(α, l)``-partitioning of the space.

    Maintains a max-heap of explored nodes keyed by accuracy gain; each
    step pops the best node and replaces it with its four quadrants.
    Nodes that are statistics-grid cells (leaves) can no longer be split
    and are set aside.  Stops at ``effective_region_count(l)`` regions,
    or earlier if every remaining region is a leaf.

    ``engine="vector"`` scores each expansion's children with the
    batched array kernel instead of per-node scalar greedy loops; the
    resulting partitioning is bit-identical.
    """
    if isinstance(reduction, PiecewiseLinearReduction) and increment is None:
        increment = reduction.segment_size
    if engine not in ("object", "vector"):
        raise ValueError(f"unknown gridreduce engine {engine!r}")
    target = effective_region_count(l)

    if engine == "vector":
        from repro.core.greedy import _as_piecewise

        pw = _as_piecewise(reduction, increment)

        def gains_of(batch: list[RegionNode]) -> list[float]:
            return _calc_err_gain_batch(
                hierarchy, batch, z, reduction, pw, use_speed
            )

    else:

        def gains_of(batch: list[RegionNode]) -> list[float]:
            return [
                calc_err_gain(
                    hierarchy, node, z, reduction,
                    increment=increment, use_speed=use_speed,
                )
                for node in batch
            ]

    counter = 0
    heap: list[tuple[float, int, RegionNode]] = []
    root = hierarchy.root
    heapq.heappush(heap, (-gains_of([root])[0], counter, root))
    counter += 1
    finished: list[RegionNode] = []
    expansions = 0

    while len(finished) + len(heap) < target and heap:
        _, _, node = heapq.heappop(heap)
        if hierarchy.is_leaf(node):
            finished.append(node)
            continue
        children = list(hierarchy.children(node))
        for child, child_gain in zip(children, gains_of(children)):
            heapq.heappush(heap, (-child_gain, counter, child))
            counter += 1
        expansions += 1

    nodes = finished + [entry[2] for entry in heap]
    regions = [RegionStats(rect=n.rect, n=n.n, m=n.m, s=n.s) for n in nodes]
    return PartitioningResult(regions=regions, nodes=nodes, expansions=expansions)


def uniform_partitioning(grid, l: int) -> PartitioningResult:
    """The paper's *l-partitioning*: a uniform √l × √l grid of regions.

    Used by the Lira-Grid baseline.  ``k = floor(√l)`` regions per side;
    region boundaries are snapped to statistics-grid cell boundaries
    (cell ``i`` belongs to region ``floor(i·k/α)``), so statistics
    aggregate exactly.  ``grid`` is a
    :class:`~repro.core.statistics_grid.StatisticsGrid`.
    """

    if l < 1:
        raise ValueError("l must be >= 1")
    alpha = grid.alpha
    k = min(max(int(l**0.5), 1), alpha)
    # Cell index boundaries of the k blocks along one axis.
    edges = [int(round(b * alpha / k)) for b in range(k + 1)]
    regions: list[RegionStats] = []
    for bi in range(k):
        i_lo, i_hi = edges[bi], edges[bi + 1]
        for bj in range(k):
            j_lo, j_hi = edges[bj], edges[bj + 1]
            n_block = grid.n[i_lo:i_hi, j_lo:j_hi]
            m_block = grid.m[i_lo:i_hi, j_lo:j_hi]
            s_block = grid.s[i_lo:i_hi, j_lo:j_hi]
            n_total = float(n_block.sum())
            momentum = float((n_block * s_block).sum())
            s_mean = momentum / n_total if n_total > 0 else 0.0
            rect = _block_rect(grid, i_lo, i_hi, j_lo, j_hi)
            regions.append(
                RegionStats(rect=rect, n=n_total, m=float(m_block.sum()), s=s_mean)
            )
    return PartitioningResult(regions=regions, nodes=[], expansions=0)


def _block_rect(
    grid: StatisticsGrid, i_lo: int, i_hi: int, j_lo: int, j_hi: int
) -> Rect:
    """Geographic rectangle of a block of statistics-grid cells."""
    from repro.geo import Rect

    cell_w = grid.bounds.width / grid.alpha
    cell_h = grid.bounds.height / grid.alpha
    return Rect(
        grid.bounds.x1 + i_lo * cell_w,
        grid.bounds.y1 + j_lo * cell_h,
        grid.bounds.x1 + i_hi * cell_w,
        grid.bounds.y1 + j_hi * cell_h,
    )
