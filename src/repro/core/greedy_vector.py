"""Array-resident GREEDYINCREMENT: the ``engine="vector"`` kernel.

The reference implementation (:func:`repro.core.greedy.greedy_increment`)
is a scalar heap loop: pop the region with the highest update gain,
advance its throttler one segment, repeat until the expenditure meets
the budget.  This module computes the *same pops in the same order*
with array reductions, exploiting two structural facts:

1. **Pop order is expenditure-free.**  A gain ``Sᵢ = wᵢ·r(Δᵢ)/mᵢ``
   depends only on the region's current segment, never on the running
   expenditure, so the heap's pop sequence can be computed up front.
   Every region marches along one shared *knot path* (the (L, S)
   segment schedule: knot levels ``L[k]`` and per-segment rates
   ``S[k]``), so region ``i``'s k-th pop has the precomputable gain
   ``g[i, k]``.  The heap pops entries in descending order of the
   *running prefix minimum* ``key[i, k] = min(g[i, :k+1])``: a region
   whose gain sequence rises pops the risen entries immediately after
   the prefix-minimum "leader" (they beat everything else left in the
   heap), which is exactly what a stable descending sort over the
   prefix-min keys produces.  Unbounded (infinite-gain) entries pop
   first, round-robin in ``(segment, region)`` order — the FIFO
   tie-break among equal heap keys.
2. **The expenditure chain is a single ufunc accumulation.**  With the
   pop order fixed, ``expenditure -= rate·step`` over the pops is
   ``np.subtract.accumulate`` over the gathered per-pop subtrahends —
   bit-identical to the sequential left fold, because the accumulate
   loop performs the same float subtractions in the same order.

Everything the sort cannot prove is delegated, never approximated:

* a pop whose budget-landing test fires (the usual way a run ends),
  or a fairness constraint about to engage, hands off to
  :func:`_continue_scalar` — the reference loop restarted from
  reconstructed state (deltas, expenditure, heap with
  order-preserving counters), which finishes the run exactly;
* a cross-region tie among the prefix's finite keys (where FIFO order
  depends on push history the sort cannot see) falls back to the
  reference loop for the whole problem.

Either way the result is bit-identical to the object path — enforced
by the equivalence suite in ``tests/test_adapt_vector.py``.
"""

from __future__ import annotations

import bisect
import heapq
import math
from dataclasses import dataclass

import numpy as np

from repro.core.greedy import (
    _EPS,
    GreedyResult,
    RegionStats,
    _region_weights,
    _uniform_solution,
)
from repro.core.reduction import PiecewiseLinearReduction
from repro.sanitize.errstate import vector_errstate

__all__ = [
    "greedy_increment_arrays",
    "greedy_increment_batch",
    "greedy_increment_vector",
]


@dataclass(frozen=True)
class _SegmentSchedule:
    """The shared (L, S) knot-path schedule of one reduction function.

    Every region starts at Δ⊢ and, until touched by budget landing or
    fairness truncation, advances along the same knot sequence.  Entry
    ``k`` describes a region's k-th heap pop: popped at ``delta_at[k]``
    (level ``L[k]``), advancing by ``full_step[k]`` to ``new_at[k]``
    with segment rate ``rate_at[k]`` (``S[k]``).  ``path_vals[c]`` is
    the throttler value after ``c`` advancing pops.  A terminal
    ``full_step`` of zero marks the reference loop's "blocked" exit
    (the residual step to Δ⊣ is below the float tolerance).
    """

    delta_at: np.ndarray
    new_at: np.ndarray
    target_at: np.ndarray
    full_step: np.ndarray
    rate_at: np.ndarray
    path_vals: np.ndarray
    n_entries: int
    n_advances: int


def _schedule_for(pw: PiecewiseLinearReduction) -> _SegmentSchedule:
    """The memoized knot-path schedule of ``pw``.

    Replays the reference loop's per-pop delta arithmetic —
    ``next_knot``, the Δ⊣ clamp, and ``new = old + step`` — in the same
    float expressions, so every schedule value is the exact double the
    scalar loop computes.
    """
    cached = pw.__dict__.get("_vector_schedule")
    if cached is not None:
        return cached  # type: ignore[no-any-return]
    d_min, d_max, seg = pw.delta_min, pw.delta_max, pw.segment_size
    delta_at: list[float] = []
    new_at: list[float] = []
    target_at: list[float] = []
    full_step: list[float] = []
    rate_at: list[float] = []
    cur = d_min
    while True:
        next_knot = d_min + seg * (math.floor((cur - d_min) / seg + 1e-7) + 1)
        target = min(next_knot, d_max)
        step = target - cur
        delta_at.append(cur)
        target_at.append(target)
        rate_at.append(pw.r(cur))
        if step <= _EPS:
            # Reference loop: the pop parks the region in ``blocked``
            # without advancing or spending.
            new_at.append(cur)
            full_step.append(0.0)
            break
        new = cur + step
        new_at.append(new)
        full_step.append(step)
        if new >= d_max - _EPS:
            break
        cur = new
    steps_arr = np.array(full_step, dtype=np.float64)
    schedule = _SegmentSchedule(
        delta_at=np.array(delta_at, dtype=np.float64),
        new_at=np.array(new_at, dtype=np.float64),
        target_at=np.array(target_at, dtype=np.float64),
        full_step=steps_arr,
        rate_at=np.array(rate_at, dtype=np.float64),
        path_vals=np.concatenate(([d_min], new_at)),
        n_entries=len(delta_at),
        n_advances=int(np.count_nonzero(steps_arr > 0)),
    )
    pw.__dict__["_vector_schedule"] = schedule
    return schedule


def _entry_tables(
    weights: np.ndarray, m: np.ndarray, sched: _SegmentSchedule
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-entry ``(..., A, K)`` gain, prefix-min key, and rate tables.

    Broadcasts over any number of leading problem axes.  The gain
    expression mirrors the reference closure bit for bit:
    ``min(fl(fl(w·S[k])/m), 1e300)`` for real query mass, ``inf``/``0``
    for subnormal ``m`` depending on the rate sign.
    """
    rate = sched.rate_at
    wr = weights[..., None] * rate
    m_col = m[..., None]
    massive = m_col > 1e-300
    safe_m = np.where(massive, m_col, 1.0)
    with np.errstate(over="ignore", invalid="ignore"):
        gains = np.where(
            massive,
            np.minimum(wr / safe_m, 1e300),
            np.where(wr > 0, np.inf, 0.0),
        )
    keys = np.minimum.accumulate(gains, axis=-1)
    return gains, keys, wr


def _candidate_order(keys: np.ndarray) -> np.ndarray:
    """Exact heap pop order per problem from the prefix-min key table.

    ``keys`` is ``(..., A, K)``.  Returns flat entry indices
    (region-major, ``i*K + k``) in pop order: infinite keys first in
    (segment, region) round-robin, then finite keys in stable
    descending order (the stable tie-break keeps each region's
    equal-key run in segment order, adjacent to its leader).  Entries
    of inactive regions must already carry ``-inf`` keys; they sort to
    the end, beyond any cut.
    """
    lead_shape = keys.shape[:-2]
    a, k = keys.shape[-2], keys.shape[-1]
    flat_keys = keys.reshape(lead_shape + (a * k,))
    order = np.argsort(-flat_keys, axis=-1, kind="stable")
    inf_mask = np.isposinf(keys)
    n_inf = inf_mask.sum(axis=(-2, -1))
    if np.any(n_inf > 0):
        # Rewrite the leading (region-major) run of infinite entries in
        # transposed — (segment, region) — order.  np.nonzero on the
        # transposed mask yields exactly that order, grouped by problem.
        transposed = np.moveaxis(inf_mask, -1, -2)  # (..., K, A)
        nz = np.nonzero(transposed)
        seg_idx, reg_idx = nz[-2], nz[-1]
        flat_entry = reg_idx * k + seg_idx
        if lead_shape:
            problem = np.ravel_multi_index(nz[:-2], lead_shape)
            offsets = np.concatenate(([0], np.cumsum(n_inf.ravel())))
            within = np.arange(flat_entry.size) - offsets[problem]
            order.reshape(-1, a * k)[problem, within] = flat_entry
        else:
            order[: flat_entry.size] = flat_entry
    return order


def _expenditure_chain(
    total_weight: np.ndarray | float, sub_ordered: np.ndarray
) -> np.ndarray:
    """``E`` entering each pop: the exact left fold of ``E -= rate·step``.

    ``chain[..., j]`` is the expenditure before pop ``j`` (so
    ``chain[..., 0]`` is the starting total weight and the array has
    one more column than pops).  ``np.subtract.accumulate`` performs
    the identical float subtraction sequence as the scalar loop.
    """
    lead = sub_ordered.shape[:-1]
    start = np.broadcast_to(
        np.asarray(total_weight, dtype=np.float64)[..., None], lead + (1,)
    )
    return np.subtract.accumulate(
        np.concatenate((start, sub_ordered), axis=-1), axis=-1
    )


def _first_true(flags: np.ndarray, default: int) -> int:
    """Index of the first True in ``flags``, or ``default`` if none."""
    if flags.size == 0:
        return default
    idx = int(np.argmax(flags))
    return idx if bool(flags[idx]) else default


def _cross_region_tie(
    keys_ord: np.ndarray, region_ord: np.ndarray, upto: int
) -> bool:
    """Any finite key tied across regions that could reorder the prefix?

    Finite equal keys sort adjacently (the sorted keys are
    non-increasing), so an adjacent-pair scan is exhaustive.  The scan
    must cover the whole equal-key run straddling the cut boundary:
    an entry beyond the cut whose key ties a prefix key can truly pop
    *before* prefix members (FIFO order the sort cannot see).  Such a
    tie's true order depends on heap push history; the caller must
    fall back to the reference loop.
    """
    hi = min(upto + 1, keys_ord.size)
    if hi < 2:
        return False
    while hi < keys_ord.size and keys_ord[hi] == keys_ord[hi - 1]:
        hi += 1
    window = keys_ord[:hi]
    ties = (
        (window[1:] == window[:-1])
        & np.isfinite(window[1:])
        & (region_ord[1:hi] != region_ord[: hi - 1])
    )
    return bool(ties.any())


def _met(expenditure: float, budget: float, total_weight: float) -> bool:
    """The reference loop's final budget test, verbatim."""
    return expenditure <= budget + max(_EPS, 1e-9 * max(total_weight, 1.0))


def greedy_increment_vector(
    regions: list[RegionStats],
    pw: PiecewiseLinearReduction,
    z: float,
    fairness: float | None,
    use_speed: bool,
) -> GreedyResult:
    """Vector-engine GREEDYINCREMENT for one problem.

    Bit-identical to the reference loop: the array fast path runs while
    its preconditions provably hold and hands the tail (budget landing,
    fairness engagement, cross-region gain ties) to the exact scalar
    continuation or the reference loop itself.

    Under ``REPRO_SANITIZE=1`` the kernel runs with NaN/overflow
    trapping (:func:`repro.sanitize.vector_errstate`).
    """
    with vector_errstate():
        return _greedy_increment_vector_impl(regions, pw, z, fairness, use_speed)


def _greedy_increment_vector_impl(
    regions: list[RegionStats],
    pw: PiecewiseLinearReduction,
    z: float,
    fairness: float | None,
    use_speed: bool,
) -> GreedyResult:
    d_min, d_max = pw.delta_min, pw.delta_max
    l = len(regions)
    weights = _region_weights(regions, use_speed)
    m = np.array([reg.m for reg in regions], dtype=np.float64)
    total_weight = float(weights.sum())
    budget = z * total_weight

    if fairness is not None and fairness <= 0.0:
        return _uniform_solution(pw, z, weights, m)
    if fairness is not None and fairness < (d_max - d_min) * 1e-4:
        return _uniform_solution(pw, z, weights, m)

    deltas = np.full(l, d_min, dtype=np.float64)
    if total_weight <= budget + _EPS:
        return GreedyResult(
            thresholds=deltas,
            expenditure=total_weight,
            budget=budget,
            inaccuracy=float((m * deltas).sum()),
            steps=0,
            budget_met=True,
        )

    sched = _schedule_for(pw)
    k = sched.n_entries
    act = np.flatnonzero(weights > 0)
    if act.size == 0:
        # No region can reduce expenditure: the reference heap starts
        # (and the loop exits) empty.
        return GreedyResult(
            thresholds=deltas,
            expenditure=total_weight,
            budget=budget,
            inaccuracy=float((m * deltas).sum()),
            steps=0,
            budget_met=_met(total_weight, budget, total_weight),
        )

    gains, keys, wr = _entry_tables(weights[act], m[act], sched)
    order = _candidate_order(keys)
    n_entries = order.size
    region_ord = order // k
    entry_ord = order - region_ord * k

    sub_ord = (wr * sched.full_step).reshape(-1)[order]
    chain = _expenditure_chain(total_weight, sub_ord)
    term = _first_true(chain <= budget + _EPS, n_entries)

    wr_ord = wr.reshape(-1)[order]
    fs_ord = sched.full_step[entry_ord]
    with np.errstate(divide="ignore", invalid="ignore"):
        land_step = (chain[:-1] - budget) / np.where(
            wr_ord > 1e-300, wr_ord, 1.0
        )
    lands = (wr_ord > 1e-300) & (fs_ord > 0) & (land_step < fs_ord)
    land = _first_true(lands, n_entries)
    cut = min(term, land)

    engage = n_entries
    if fairness is not None:
        engage = _fairness_engagement(
            sched, keys, order, entry_ord, fairness,
            all_active=act.size == l,
        )
        cut = min(cut, engage)

    keys_ord = keys.reshape(-1)[order]
    if _cross_region_tie(keys_ord, region_ord, cut):
        from repro.core.greedy import greedy_increment

        return greedy_increment(
            regions, pw, z, increment=None, fairness=fairness,
            use_speed=use_speed,
        )

    advancing = fs_ord[:cut] > 0
    adv_counts = np.bincount(region_ord[:cut][advancing], minlength=act.size)
    deltas[act] = sched.path_vals[adv_counts]
    if cut == term:
        expenditure = float(chain[term])
        return GreedyResult(
            thresholds=deltas,
            expenditure=expenditure,
            budget=budget,
            inaccuracy=float((m * deltas).sum()),
            steps=int(advancing.sum()),
            budget_met=_met(expenditure, budget, total_weight),
        )

    if cut == land and cut < engage:
        # Pure budget landing: the reference performs exactly one more
        # (partial) pop and the while-condition fails.  Same float
        # expressions as the scalar loop, so the result is bit-identical.
        rate = float(wr_ord[cut])
        step = (float(chain[cut]) - budget) / rate
        expenditure = float(chain[cut]) - rate * step
        if expenditure <= budget + _EPS:
            i_land = int(act[region_ord[cut]])
            deltas[i_land] = float(sched.delta_at[entry_ord[cut]]) + step
            return GreedyResult(
                thresholds=deltas,
                expenditure=expenditure,
                budget=budget,
                inaccuracy=float((m * deltas).sum()),
                steps=int(advancing.sum()) + 1,
                budget_met=_met(expenditure, budget, total_weight),
            )

    return _continue_scalar(
        pw=pw,
        weights=weights,
        m=m,
        deltas=deltas,
        expenditure=float(chain[cut]),
        budget=budget,
        total_weight=total_weight,
        steps=int(advancing.sum()),
        fairness=fairness,
        act=act,
        pops_local=region_ord[:cut],
        counts=np.bincount(region_ord[:cut], minlength=act.size),
        gains=gains,
        sched=sched,
        l=l,
    )


def _fairness_engagement(
    sched: _SegmentSchedule,
    keys: np.ndarray,
    order: np.ndarray,
    entry_ord: np.ndarray,
    fairness: float,
    all_active: bool,
) -> int:
    """First pop index at which the fairness constraint *could* act.

    Strictly conservative: before the returned index the reference
    loop provably never truncates a step against ``Δ⊳ + Δ⇔``, never
    blocks a region, and never wakes one — so the fairness run is
    bit-identical to the unconstrained run up to there.  The running
    minimum ``Δ⊳`` before pop ``j`` is the knot value of the completed
    round count: round ``r`` completes at the latest position any
    region pops its r-th entry.  The check substitutes Δ⊳ *before* the
    pop for the post-pop minimum the reference ``at_limit`` test reads;
    the minimum is non-decreasing and ``fl`` is monotone, so the
    substitution only ever engages earlier (never later) than the
    reference — erring into the exact scalar path.
    """
    a, k = keys.shape
    n = order.size
    if all_active:
        inv = np.empty(n, dtype=np.int64)
        inv[order] = np.arange(n)
        round_done_at = inv.reshape(a, k).max(axis=0)
        rounds = np.searchsorted(round_done_at, np.arange(n), side="left")
        cur_min = sched.path_vals[np.minimum(rounds, sched.n_advances)]
    else:
        # Some region never enters the heap: the minimum stays Δ⊢.
        cur_min = np.full(n, sched.path_vals[0])
    limit = cur_min + fairness
    engaged = (
        (sched.target_at[entry_ord] > limit)
        | (sched.new_at[entry_ord] >= limit - _EPS)
        | (sched.full_step[entry_ord] <= 0)
    )
    return _first_true(engaged, n)


def _continue_scalar(
    pw: PiecewiseLinearReduction,
    weights: np.ndarray,
    m: np.ndarray,
    deltas: np.ndarray,
    expenditure: float,
    budget: float,
    total_weight: float,
    steps: int,
    fairness: float | None,
    act: np.ndarray,
    pops_local: np.ndarray,
    counts: np.ndarray,
    gains: np.ndarray,
    sched: _SegmentSchedule,
    l: int,
) -> GreedyResult:
    """Finish a run exactly: the reference loop from reconstructed state.

    ``act`` maps local (active-subset) region indices to problem
    indices; ``pops_local``, ``counts``, and ``gains`` are local.  The
    heap is rebuilt with order-preserving counters — regions never
    popped keep their initial push rank, re-pushed regions are ordered
    by the position of their latest pop — so every future FIFO
    tie-break matches the uninterrupted run (the prefix was verified
    tie-free, making the reconstruction unambiguous).
    """
    d_min, d_max = pw.delta_min, pw.delta_max
    seg = pw.segment_size
    w_l = weights.tolist()
    m_l = m.tolist()
    deltas_l = deltas.tolist()
    cut = pops_local.size

    # Sorted-list multiset: same float values as the reference
    # _MinMultiset (both report the exact minimum of the same multiset),
    # but with O(1) min for the hot loop.
    ordered = sorted(deltas_l)
    insort = bisect.insort
    bsearch = bisect.bisect_left
    blocked: dict[int, bool] = {}
    heap: list[tuple[float, int, int]] = []
    k = sched.n_entries
    last_pop_pos = np.full(act.size, -1, dtype=np.int64)
    if cut:
        np.maximum.at(last_pop_pos, pops_local, np.arange(cut))
    for local, i in enumerate(act):
        cnt = int(counts[local])
        if cnt >= k:
            if sched.full_step[k - 1] <= 0:
                blocked[int(i)] = True  # popped its blocked-terminal entry
            continue  # else retired at Δ⊣
        counter = local if cnt == 0 else l + int(last_pop_pos[local])
        heap.append((-float(gains[local, cnt]), counter, int(i)))
    heapq.heapify(heap)
    counter = l + cut + 1

    # Inlined PiecewiseLinearReduction.r for in-domain deltas: same
    # segment-index expression, same clamps, same rate list.  Regions
    # march the same knot path, so per-delta knot/rate pairs repeat
    # constantly; the memo returns the identical floats.
    rates: list[float] = pw._rates
    last_seg = len(rates) - 1
    knot_memo: dict[float, tuple[float, float]] = {}

    def knot_info(old: float) -> tuple[float, float]:
        got = knot_memo.get(old)
        if got is None:
            next_knot = d_min + seg * (math.floor((old - d_min) / seg + 1e-7) + 1)
            if old >= d_max:
                rate0 = rates[last_seg]
            else:
                idx = int((old - d_min) / seg)
                rate0 = rates[
                    idx if 0 <= idx <= last_seg else (0 if idx < 0 else last_seg)
                ]
            got = (min(next_knot, d_max), rate0)
            knot_memo[old] = got
        return got

    def gain(i: int, delta: float) -> float:
        rate = w_l[i] * knot_info(delta)[1]
        if m_l[i] > 1e-300:
            return min(rate / m_l[i], 1e300)
        return math.inf if rate > 0 else 0.0

    # ------------------------------------------------------------------
    # Mirror of the reference loop in repro.core.greedy.greedy_increment
    # (same expressions in the same order — keep the two in sync).
    # ------------------------------------------------------------------
    heappop, heappush = heapq.heappop, heapq.heappush
    while expenditure > budget + _EPS and heap:
        _, _, i = heappop(heap)
        old = deltas_l[i]
        current_min = ordered[0]
        target, rate = knot_info(old)
        if fairness is not None:
            target = min(target, current_min + fairness)
        step = target - old
        if step <= _EPS:
            blocked[i] = True
            continue
        rate = w_l[i] * rate
        if rate > 1e-300:
            step = min(step, (expenditure - budget) / rate)
        new = old + step
        expenditure -= rate * step
        deltas_l[i] = new
        del ordered[bsearch(ordered, old)]
        insort(ordered, new)
        steps += 1

        at_limit = fairness is not None and new >= ordered[0] + fairness - _EPS
        if new >= d_max - _EPS:
            pass  # throttler maxed out; retired
        elif at_limit:
            blocked[i] = True
        else:
            heappush(heap, (-gain(i, new), counter, i))
            counter += 1

        new_min = ordered[0]
        if fairness is not None and new_min > current_min + _EPS and blocked:
            for j in list(blocked):
                if deltas_l[j] < new_min + fairness - _EPS:
                    del blocked[j]
                    heappush(heap, (-gain(j, deltas_l[j]), counter, j))
                    counter += 1

    out = np.array(deltas_l, dtype=np.float64)
    return GreedyResult(
        thresholds=out,
        expenditure=expenditure,
        budget=budget,
        inaccuracy=float((m * out).sum()),
        steps=steps,
        budget_met=_met(expenditure, budget, total_weight),
    )


def greedy_increment_batch(
    problems: list[list[RegionStats]],
    pw: PiecewiseLinearReduction,
    z: float,
    use_speed: bool,
) -> list[GreedyResult]:
    """Vector-engine GREEDYINCREMENT over same-size problems at once.

    Convenience wrapper over :func:`greedy_increment_arrays` for
    callers holding :class:`RegionStats` objects.
    """
    if not problems:
        return []
    sizes = {len(p) for p in problems}
    if len(sizes) != 1:
        raise ValueError("batched problems must share a region count")
    (a,) = sizes
    if a == 0:
        raise ValueError("at least one region is required per problem")
    p_count = len(problems)
    n = np.empty((p_count, a), dtype=np.float64)
    m = np.empty((p_count, a), dtype=np.float64)
    s = np.empty((p_count, a), dtype=np.float64)
    for row, regions in enumerate(problems):
        n[row] = [reg.n for reg in regions]
        m[row] = [reg.m for reg in regions]
        s[row] = [reg.s for reg in regions]
    return greedy_increment_arrays(n, m, s, pw, z, use_speed)


def greedy_increment_arrays(
    n: np.ndarray,
    m: np.ndarray,
    s: np.ndarray,
    pw: PiecewiseLinearReduction,
    z: float,
    use_speed: bool,
) -> list[GreedyResult]:
    """GREEDYINCREMENT over ``(P, A)`` stacked problem statistics.

    GRIDREDUCE's CALCERRGAIN scores one four-child throttler problem
    per candidate node; this entry point shares the sort/accumulate
    machinery across all problems of one expansion (fairness is never
    constrained inside CALCERRGAIN) and assembles every clean row with
    pure array reductions — no per-row kernel work.  Rows the sort
    cannot prove (cross-region key ties, a landing pop that leaves a
    float residue above the budget tolerance) resolve in the exact
    scalar continuation.  Results are bit-identical to running the
    reference loop per problem, and independent of how problems are
    grouped into batches (every op is row-local).

    Under ``REPRO_SANITIZE=1`` the kernel runs with NaN/overflow
    trapping (:func:`repro.sanitize.vector_errstate`); the deliberate
    ``errstate(ignore)`` window around the landing-step division keeps
    its local masking either way.
    """
    with vector_errstate():
        return _greedy_increment_arrays_impl(n, m, s, pw, z, use_speed)


def _greedy_increment_arrays_impl(
    n: np.ndarray,
    m: np.ndarray,
    s: np.ndarray,
    pw: PiecewiseLinearReduction,
    z: float,
    use_speed: bool,
) -> list[GreedyResult]:
    n = np.asarray(n, dtype=np.float64)
    m = np.asarray(m, dtype=np.float64)
    p_count, a = n.shape
    sched = _schedule_for(pw)
    k = sched.n_entries

    # _region_weights, vectorized over rows: nᵢ·sᵢ, falling back to nᵢ
    # for rows whose speed-weighted mass vanishes.
    if use_speed:
        weights = n * np.asarray(s, dtype=np.float64)
        fallback = (weights.sum(axis=1) <= 0) & (n.sum(axis=1) > 0)
        if fallback.any():
            weights = np.where(fallback[:, None], n, weights)
    else:
        weights = n
    totals = weights.sum(axis=1)
    budgets = z * totals

    gains, keys, wr = _entry_tables(weights, m, sched)
    active = weights > 0
    n_live = active.sum(axis=1) * k
    if not active.all():
        keys = np.where(active[..., None], keys, -np.inf)
    order = _candidate_order(keys)
    n_total = a * k
    ord_flat = order + (np.arange(p_count) * n_total)[:, None]
    region_ord = order // k
    entry_ord = order - region_ord * k
    wr_ord = wr.reshape(-1)[ord_flat]
    fs_ord = sched.full_step[entry_ord]
    # Gather-then-multiply equals multiply-then-gather bit for bit.
    sub_ord = wr_ord * fs_ord
    if (weights < 0).any():
        # Negative-weight regions are inactive (never pushed); zero
        # their subtrahends so the chain tail stays non-increasing for
        # the suffix-count term test.  Live-prefix values are untouched.
        sub_ord = np.where(wr_ord > 0, sub_ord, 0.0)
    chain = _expenditure_chain(totals, sub_ord)

    fs_pos = fs_ord > 0
    with np.errstate(divide="ignore", invalid="ignore"):
        land_step = (chain[:, :-1] - budgets[:, None]) / np.where(
            wr_ord > 1e-300, wr_ord, 1.0
        )
    lands = (wr_ord > 1e-300) & fs_pos & (land_step < fs_ord)

    # Per-row cuts.  ``term``: the while-condition fails before pop j
    # (including j = n_live, heap exhaustion) — the chain is
    # non-increasing, so the first sub-budget index is a suffix count.
    # ``land``: pop j is a partial budget landing (entries of inactive
    # regions carry zero rates, so none land beyond the live prefix).
    pos = np.arange(n_total)
    term = np.minimum(
        (n_total + 1) - (chain <= budgets[:, None] + _EPS).sum(axis=1),
        n_live,
    )
    land_first = np.where(
        lands.any(axis=1), lands.argmax(axis=1), n_total
    )
    cut = np.minimum(term, land_first)

    # _cross_region_tie, vectorized: extend the scan window through the
    # whole equal-key run straddling the cut, then test for any
    # cross-region finite tie inside it.  No adjacent finite
    # cross-region equality anywhere (the usual case) means no row can
    # tie regardless of its cut.
    keys_ord = keys.reshape(-1)[ord_flat]
    eq = keys_ord[:, 1:] == keys_ord[:, :-1]
    tie_pair = (
        eq
        & np.isfinite(keys_ord[:, 1:])
        & (region_ord[:, 1:] != region_ord[:, :-1])
    )
    if tie_pair.any():
        run_end = (~eq) & (pos[None, : n_total - 1] >= cut[:, None])
        hi = np.where(
            run_end.any(axis=1), run_end.argmax(axis=1) + 1, n_total
        )
        first_tie = np.where(
            tie_pair.any(axis=1), tie_pair.argmax(axis=1), n_total
        )
        tie_rows = first_tie <= hi - 2
    else:
        tie_rows = np.zeros(p_count, dtype=bool)

    # Clean-row assembly: thresholds from per-region advance counts,
    # one scattered partial step for landing rows.
    adv_mask = (pos[None, :] < cut[:, None]) & fs_pos
    flat_reg = (region_ord + (np.arange(p_count) * a)[:, None])[adv_mask]
    counts = np.bincount(flat_reg, minlength=p_count * a).reshape(p_count, a)
    deltas = sched.path_vals[counts]
    rowsel = np.arange(p_count)
    cut_c = np.minimum(cut, n_total - 1)
    exp_at = chain[rowsel, cut]
    is_land = cut < term
    rate = wr_ord[rowsel, cut_c]
    step_land = (exp_at - budgets) / np.where(rate > 1e-300, rate, 1.0)
    exp_land = exp_at - rate * step_land
    land_ok = is_land & (exp_land <= budgets + _EPS)
    land_rows = np.flatnonzero(land_ok)
    if land_rows.size:
        deltas[land_rows, region_ord[land_rows, cut[land_rows]]] = (
            sched.delta_at[entry_ord[land_rows, cut[land_rows]]]
            + step_land[land_rows]
        )
    expenditure = np.where(land_ok, exp_land, chain[rowsel, term])
    inaccuracy = (m * deltas).sum(axis=1)
    steps = counts.sum(axis=1) + land_ok
    met = expenditure <= budgets + np.maximum(
        _EPS, 1e-9 * np.maximum(totals, 1.0)
    )

    need_slow = tie_rows | (is_land & ~land_ok)
    results: list[GreedyResult | None] = [None] * p_count
    for row in range(p_count):
        if need_slow[row]:
            continue
        results[row] = GreedyResult(
            thresholds=deltas[row].copy(),
            expenditure=float(expenditure[row]),
            budget=float(budgets[row]),
            inaccuracy=float(inaccuracy[row]),
            steps=int(steps[row]),
            budget_met=bool(met[row]),
        )

    for row in np.flatnonzero(need_slow):
        # Tie rows restart the reference loop from scratch (pop order
        # ambiguous); residue rows continue it from the verified cut.
        start = 0 if tie_rows[row] else int(cut[row])
        act = np.flatnonzero(active[row])
        local_of = np.zeros(a, dtype=np.int64)
        local_of[act] = np.arange(act.size)
        pops_local = local_of[region_ord[row, :start]]
        advancing = fs_ord[row, :start] > 0
        adv_counts = np.bincount(pops_local[advancing], minlength=act.size)
        row_deltas = np.full(a, pw.delta_min, dtype=np.float64)
        row_deltas[act] = sched.path_vals[adv_counts]
        results[row] = _continue_scalar(
            pw=pw,
            weights=weights[row],
            m=m[row],
            deltas=row_deltas,
            expenditure=float(chain[row, start]),
            budget=float(budgets[row]),
            total_weight=float(totals[row]),
            steps=int(advancing.sum()),
            fairness=None,
            act=act,
            pops_local=pops_local,
            counts=np.bincount(pops_local, minlength=act.size),
            gains=gains[row][act],
            sched=sched,
            l=a,
        )
    return results  # type: ignore[return-value]
