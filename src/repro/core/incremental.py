"""Cross-round state for the incremental adapt pipeline.

LIRA's pitch is *lightweight* adaptivity: steady-state adaptation cost
should track the drift in the statistics, not the domain size.  This
module holds the state that survives between adaptation rounds and
makes that possible while keeping the results bit-identical to the
from-scratch path:

* :class:`IncrementalGridReduceCache` — per-node CALCERRGAIN gains
  memoized by quad-tree coordinate and *validated by value* against the
  node's current aggregate statistics (the gain is a pure function of
  the node's ``(n, m, s)``, its four children's statistics, ``z`` and
  the static reduction inputs, so an exact float match guarantees the
  memoized gain is the one a fresh solve would produce).  The cache
  also records the previous run's *trajectory* — the heap push sequence
  and the final partitioning — so the next run can score the whole
  expected node set in one batched kernel call (the expansion replay
  shortcut) instead of one call per expansion.

* :class:`IncrementalAdaptSession` — the load shedder's between-round
  state: the persistent :class:`~repro.core.quadtree.RegionHierarchy`
  (sparsely refreshed from the grid's dirty cells), copies of the last
  grid statistics used for exact change detection, a single-entry
  GREEDYINCREMENT memo, and the last plan for identity reuse + plan
  epoch stamping.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.core.greedy import GreedyResult
    from repro.core.plan import SheddingPlan
    from repro.core.quadtree import RegionHierarchy

# A node's coordinate in the quad-tree: (level, i, j).
NodeCoord = tuple[int, int, int]

# Number of floats in a node's gain key: its own (n, m, s) plus the
# same triple for each of its four children.
KEY_WIDTH = 15

# Deepest level granted array-backed memo storage, by side cell count.
# A level with side S holds S² nodes; 256² keys at KEY_WIDTH floats is
# ~7.9 MB.  Deeper levels (α ≥ 512 only) are simply not memoized —
# their gains recompute every round, which dirty tracking already makes
# rare — keeping cache memory bounded regardless of α.
_MAX_MEMO_SIDE = 256


@dataclass
class GridReduceTrajectory:
    """The observable history of one GRIDREDUCE run.

    ``scored`` is every node pushed onto the expansion heap, in push
    order (the set whose gains determine the whole pop sequence);
    ``result`` is the final partitioning's node coordinates in output
    order; ``expansions`` the number of quadrant splits performed.
    """

    scored: list[NodeCoord]
    result: list[NodeCoord]
    expansions: int


class IncrementalGridReduceCache:
    """Gain memo + trajectory cache consumed by ``grid_reduce``.

    Gains are memoized per quad-tree level in dense arrays — for each
    node a ``KEY_WIDTH``-float *key* (the exact aggregate statistics the
    gain was computed from) alongside the gain itself.  A lookup is a
    hit only when the freshly gathered key compares equal element for
    element — dirty nodes therefore miss by construction and clean nodes
    hit without any separate invalidation bookkeeping.  ``z`` changes
    clear everything (gains are z-dependent); the reduction inputs are
    fixed per shedder and are not part of the key.

    ``round_gains`` holds the gains already validated *this run* (the
    warm prepass fills it from the previous trajectory), letting the
    expansion heap loop read plain dict entries instead of re-gathering
    keys per pop.
    """

    def __init__(self) -> None:
        self.z: float | None = None
        #: level -> (keys (S,S,KEY_WIDTH), gains (S,S), valid (S,S)).
        self.levels: dict[
            int, tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = {}
        self.trajectory: GridReduceTrajectory | None = None
        #: Gains validated during the current grid_reduce call.
        self.round_gains: dict[NodeCoord, float] = {}
        # Diagnostics (not part of any contract): memo hit/miss counts
        # accumulated across rounds, readable by benches.
        self.hits = 0
        self.misses = 0

    def level_store(
        self, level: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray] | None:
        """The (keys, gains, valid) arrays of one level, or ``None``.

        ``None`` means the level is too deep to memoize (memory bound);
        callers treat every node there as a miss.
        """
        store = self.levels.get(level)
        if store is not None:
            return store
        side = 1 << level
        if side > _MAX_MEMO_SIDE:
            return None
        store = (
            np.zeros((side, side, KEY_WIDTH), dtype=np.float64),
            np.zeros((side, side), dtype=np.float64),
            np.zeros((side, side), dtype=bool),
        )
        self.levels[level] = store
        return store

    def reset_for_z(self, z: float) -> None:
        """Invalidate everything if the throttle fraction changed."""
        if self.z is not None and self.z == z:
            return
        self.z = z
        for _, _, valid in self.levels.values():
            valid[:] = False
        self.trajectory = None


@dataclass
class IncrementalAdaptSession:
    """Between-round state owned by an incremental ``LiraLoadShedder``."""

    hierarchy: "RegionHierarchy | None" = None
    prev_n: np.ndarray | None = None
    prev_m: np.ndarray | None = None
    prev_s: np.ndarray | None = None
    gridreduce: IncrementalGridReduceCache = field(
        default_factory=IncrementalGridReduceCache
    )
    # Single-entry GREEDYINCREMENT memo: the final throttler solve is
    # a pure function of (z, region statistics), which repeat exactly
    # whenever the drift did not touch the partitioning.
    greedy_key: tuple | None = None
    greedy_result: "GreedyResult | None" = None
    # Last emitted plan (for identity reuse and epoch stamping) plus
    # the (regions, thresholds) content it was built from.
    plan: "SheddingPlan | None" = None
    plan_key: tuple | None = None
    epoch: int = 0
    # Diagnostics: how the last round resolved its plan.
    last_plan_reused: bool = False
    last_geometry_reused: bool = False

    def dirty_mask(self, grid) -> np.ndarray | None:
        """Exact changed-cell mask of ``grid`` vs the previous round.

        Returns ``None`` when there is no previous round (or the grid
        shape changed), meaning "treat everything as dirty".
        """
        if (
            self.prev_n is None
            or self.prev_n.shape != grid.n.shape
            or self.hierarchy is None
            or self.hierarchy.bounds != grid.bounds
        ):
            return None
        return (
            (grid.n != self.prev_n)
            | (grid.m != self.prev_m)
            | (grid.s != self.prev_s)
        )

    def checkpoint(self, grid) -> None:
        """Remember the grid statistics the next round will diff against."""
        self.prev_n = grid.n.copy()
        self.prev_m = grid.m.copy()
        self.prev_s = grid.s.copy()
