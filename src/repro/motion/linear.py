"""Linear motion models for dead reckoning.

The paper adopts piece-wise linear approximation of node movement
(Wolfson et al. [19]): a node reports ``(position, velocity, time)`` and
the server extrapolates ``position + velocity * (t - time)`` until the
next report.  LIRA uses the report-triggering inaccuracy threshold Δ as
its control knob; the model itself is deliberately simple and the paper
notes the particular motion model is not important.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo import Point


@dataclass(frozen=True, slots=True)
class MotionReport:
    """One dead-reckoning report: model parameters sent by a node."""

    node_id: int
    time: float
    position: Point
    velocity: Point


@dataclass(frozen=True, slots=True)
class LinearMotionModel:
    """A linear motion model anchored at a report.

    ``predict(t)`` extrapolates the reported position along the reported
    velocity.  Immutable: a new report produces a new model.
    """

    position: Point
    velocity: Point
    time: float

    @classmethod
    def from_report(cls, report: MotionReport) -> "LinearMotionModel":
        """Build the server-side model for a received report."""
        return cls(position=report.position, velocity=report.velocity, time=report.time)

    def predict(self, t: float) -> Point:
        """Predicted position at time ``t`` (extrapolation is unclamped)."""
        dt = t - self.time
        return Point(
            self.position.x + self.velocity.x * dt,
            self.position.y + self.velocity.y * dt,
        )

    def deviation(self, t: float, actual: Point) -> float:
        """Distance between the prediction at ``t`` and the true position."""
        return self.predict(t).distance_to(actual)
