"""Dead-reckoning / motion-modeling substrate (source-side update actuation)."""

from repro.motion.dead_reckoning import DeadReckoningFleet, DeadReckoningTracker
from repro.motion.linear import LinearMotionModel, MotionReport
from repro.motion.models import (
    ModelDrivenTracker,
    SecondOrderMotionModel,
    compare_update_volume,
    make_linear_model,
    make_second_order_model,
)

__all__ = [
    "DeadReckoningFleet",
    "DeadReckoningTracker",
    "LinearMotionModel",
    "ModelDrivenTracker",
    "MotionReport",
    "SecondOrderMotionModel",
    "compare_update_volume",
    "make_linear_model",
    "make_second_order_model",
]
