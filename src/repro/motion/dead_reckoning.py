"""Dead-reckoning update generation.

Two implementations of the same protocol:

* :class:`DeadReckoningTracker` — one node, object per node.  Clear and
  directly testable against the protocol's definition.
* :class:`DeadReckoningFleet` — the whole population in numpy arrays.
  Used by the simulator, where observing thousands of nodes per tick in
  Python objects would dominate runtime.

A node reports when the deviation between its last-sent linear model's
prediction and its true position exceeds its inaccuracy threshold Δ.
The threshold is *per node* — LIRA sets it to the update throttler of
the node's current shedding region.
"""

from __future__ import annotations

import numpy as np

from repro.geo import Point
from repro.motion.linear import LinearMotionModel, MotionReport


class DeadReckoningTracker:
    """Node-side dead reckoning for a single mobile node.

    Call :meth:`observe` every time the node samples its position; it
    returns a :class:`MotionReport` when the protocol requires sending
    one (including the very first observation), else ``None``.
    """

    def __init__(self, node_id: int) -> None:
        self.node_id = node_id
        self.model: LinearMotionModel | None = None
        self.reports_sent = 0

    def observe(
        self, t: float, position: Point, velocity: Point, threshold: float
    ) -> MotionReport | None:
        """Process one position sample under inaccuracy threshold Δ=``threshold``."""
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        if self.model is not None and self.model.deviation(t, position) <= threshold:
            return None
        report = MotionReport(
            node_id=self.node_id, time=t, position=position, velocity=velocity
        )
        self.model = LinearMotionModel.from_report(report)
        self.reports_sent += 1
        return report


class DeadReckoningFleet:
    """Vectorized node-side dead reckoning for ``n`` nodes.

    State is the last *sent* model per node (position, velocity, time).
    Per-node thresholds are set with :meth:`set_thresholds` — this is the
    hook through which a shedding policy actuates load reduction at the
    sources.
    """

    def __init__(self, n_nodes: int) -> None:
        # Zero is allowed: a shard of the partitioned deployment can
        # transiently (or, with an unlucky station draw, permanently)
        # own no nodes and still ticks through the same code path.
        if n_nodes < 0:
            raise ValueError("n_nodes must be non-negative")
        self.n_nodes = n_nodes
        self.thresholds = np.zeros(n_nodes, dtype=np.float64)
        self._sent_pos = np.zeros((n_nodes, 2), dtype=np.float64)
        self._sent_vel = np.zeros((n_nodes, 2), dtype=np.float64)
        self._sent_time = np.zeros(n_nodes, dtype=np.float64)
        self._has_model = np.zeros(n_nodes, dtype=bool)
        self.total_reports = 0

    def set_thresholds(self, thresholds: np.ndarray | float) -> None:
        """Install per-node inaccuracy thresholds (broadcastable scalar ok)."""
        values = np.broadcast_to(np.asarray(thresholds, dtype=np.float64), (self.n_nodes,))
        if np.any(values < 0):
            raise ValueError("thresholds must be non-negative")
        self.thresholds = values.copy()

    def observe(self, t: float, positions: np.ndarray, velocities: np.ndarray) -> np.ndarray:
        """Process one tick of samples; return ids of nodes that report.

        ``positions`` and ``velocities`` have shape ``(n, 2)``.  Nodes
        without a model yet always report.  Reporting nodes' stored
        models are replaced with the new samples.
        """
        positions = np.asarray(positions, dtype=np.float64)
        velocities = np.asarray(velocities, dtype=np.float64)
        if positions.shape != (self.n_nodes, 2) or velocities.shape != (self.n_nodes, 2):
            raise ValueError("positions/velocities must have shape (n_nodes, 2)")
        dt = t - self._sent_time
        predicted = self._sent_pos + self._sent_vel * dt[:, None]
        deviation = np.linalg.norm(predicted - positions, axis=1)
        senders = np.flatnonzero(~self._has_model | (deviation > self.thresholds))
        if senders.size:
            self._sent_pos[senders] = positions[senders]
            self._sent_vel[senders] = velocities[senders]
            self._sent_time[senders] = t
            self._has_model[senders] = True
            self.total_reports += int(senders.size)
        return senders

    def node_models(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Snapshot of (positions, velocities, times) of last-sent models."""
        return self._sent_pos.copy(), self._sent_vel.copy(), self._sent_time.copy()

    # ------------------------------------------------------------------
    # Row surgery (cross-shard node handoff)
    # ------------------------------------------------------------------

    def extract_rows(self, rows: np.ndarray) -> dict[str, np.ndarray]:
        """Remove the given row indices and return their model state.

        The last-*sent* model travels with a node migrating to another
        shard's fleet, so its dead-reckoning deviation test continues
        seamlessly; ``total_reports`` stays with the source fleet.
        """
        state = {
            "sent_pos": self._sent_pos[rows].copy(),
            "sent_vel": self._sent_vel[rows].copy(),
            "sent_time": self._sent_time[rows].copy(),
            "has_model": self._has_model[rows].copy(),
        }
        self._sent_pos = np.delete(self._sent_pos, rows, axis=0)
        self._sent_vel = np.delete(self._sent_vel, rows, axis=0)
        self._sent_time = np.delete(self._sent_time, rows)
        self._has_model = np.delete(self._has_model, rows)
        self.thresholds = np.delete(self.thresholds, rows)
        self.n_nodes = int(self._sent_time.size)
        return state

    def insert_rows(self, at: np.ndarray, state: dict[str, np.ndarray]) -> None:
        """Insert rows (from :meth:`extract_rows`) before indices ``at``."""
        self._sent_pos = np.insert(self._sent_pos, at, state["sent_pos"], axis=0)
        self._sent_vel = np.insert(self._sent_vel, at, state["sent_vel"], axis=0)
        self._sent_time = np.insert(self._sent_time, at, state["sent_time"])
        self._has_model = np.insert(self._has_model, at, state["has_model"])
        self.thresholds = np.insert(
            self.thresholds, at, np.zeros(state["sent_time"].size)
        )
        self.n_nodes = int(self._sent_time.size)
