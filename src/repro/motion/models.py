"""Alternative motion models for dead reckoning.

The paper adopts piece-wise linear motion modeling but notes that "more
advanced models also exist [2]" and that "the particular motion model
used is not of importance" to LIRA — the inaccuracy threshold Δ is the
interface.  This module makes that pluggability concrete: a
:class:`MotionModelProtocol`, a constant-acceleration
:class:`SecondOrderMotionModel`, a model-agnostic
:class:`ModelDrivenTracker`, and a utility comparing the update volume
different models produce at equal Δ (better models → fewer updates →
more headroom before shedding is needed at all).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol


from repro.geo import Point
from repro.motion.linear import LinearMotionModel


class MotionModelProtocol(Protocol):
    """What a dead-reckoning motion model must provide."""

    def predict(self, t: float) -> Point: ...

    def deviation(self, t: float, actual: Point) -> float: ...


@dataclass(frozen=True, slots=True)
class SecondOrderMotionModel:
    """Constant-acceleration motion model.

    Extrapolates ``p + v·dt + a·dt²/2``.  The acceleration is estimated
    node-side from consecutive velocity samples; for vehicles braking
    into and accelerating out of turns this tracks longer than a linear
    model, deferring the deviation-triggered report.
    """

    position: Point
    velocity: Point
    acceleration: Point
    time: float

    def predict(self, t: float) -> Point:
        dt = t - self.time
        return Point(
            self.position.x + self.velocity.x * dt + 0.5 * self.acceleration.x * dt * dt,
            self.position.y + self.velocity.y * dt + 0.5 * self.acceleration.y * dt * dt,
        )

    def deviation(self, t: float, actual: Point) -> float:
        return self.predict(t).distance_to(actual)


def make_linear_model(
    t: float,
    position: Point,
    velocity: Point,
    previous_velocity: Point | None,
    sample_dt: float,
) -> LinearMotionModel:
    """Model factory for piece-wise linear dead reckoning (the default)."""
    return LinearMotionModel(position=position, velocity=velocity, time=t)


def make_second_order_model(
    t: float,
    position: Point,
    velocity: Point,
    previous_velocity: Point | None,
    sample_dt: float,
) -> SecondOrderMotionModel:
    """Model factory estimating acceleration from consecutive velocities."""
    if previous_velocity is None or sample_dt <= 0:
        acceleration = Point(0.0, 0.0)
    else:
        acceleration = Point(
            (velocity.x - previous_velocity.x) / sample_dt,
            (velocity.y - previous_velocity.y) / sample_dt,
        )
    return SecondOrderMotionModel(
        position=position, velocity=velocity, acceleration=acceleration, time=t
    )


class ModelDrivenTracker:
    """Dead reckoning with a pluggable motion-model factory.

    The protocol is unchanged — report when the model's prediction
    deviates from the true position by more than Δ — only the
    extrapolation differs.  The factory receives
    ``(t, position, velocity, previous_velocity, sample_dt)`` and
    returns a model.
    """

    def __init__(self, node_id: int, model_factory=make_linear_model) -> None:
        self.node_id = node_id
        self.model_factory = model_factory
        self.model: MotionModelProtocol | None = None
        self.reports_sent = 0
        self._last_velocity: Point | None = None
        self._last_sample_time: float | None = None

    def observe(
        self, t: float, position: Point, velocity: Point, threshold: float
    ) -> bool:
        """Process one sample; returns True when a report is sent."""
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        sample_dt = (
            t - self._last_sample_time if self._last_sample_time is not None else 0.0
        )
        send = self.model is None or self.model.deviation(t, position) > threshold
        if send:
            self.model = self.model_factory(
                t, position, velocity, self._last_velocity, sample_dt
            )
            self.reports_sent += 1
        self._last_velocity = velocity
        self._last_sample_time = t
        return send


def compare_update_volume(
    samples: list[tuple[float, Point, Point]],
    threshold: float,
    factories: dict[str, object] | None = None,
) -> dict[str, int]:
    """Report counts per motion model over one node's sample stream.

    ``samples`` is a list of ``(t, position, velocity)``.  Defaults to
    comparing the linear and second-order models.
    """
    if factories is None:
        factories = {
            "linear": make_linear_model,
            "second-order": make_second_order_model,
        }
    counts = {}
    for name, factory in factories.items():
        tracker = ModelDrivenTracker(0, model_factory=factory)
        for t, position, velocity in samples:
            tracker.observe(t, position, velocity, threshold)
        counts[name] = tracker.reports_sent
    return counts
