"""Shared process-pool heuristics.

Every pool user in this repository — the experiment sweep engine
(:mod:`repro.experiments.runner`), the sharded systems loop
(:mod:`repro.server.sharded`), and the lint driver
(:mod:`repro.lint.engine`) — faces the same two questions: how many
workers by default, and whether a pool can beat the serial loop at all.
Answering them in one place keeps the fallback behaviour identical
across seams (and keeps the single-core pessimization documented once).

This module deliberately imports nothing from ``repro`` so any layer
can use it without import cycles.
"""

from __future__ import annotations

import os

__all__ = ["default_jobs", "pool_is_profitable"]


def default_jobs() -> int:
    """Worker count when the caller does not specify one: all cores."""
    return os.cpu_count() or 1


def pool_is_profitable(n_workers: int, n_jobs: int) -> bool:
    """Whether a process pool can possibly beat the serial loop.

    On a single-core host the pool serializes the same work behind
    fork/pickle overhead (measured ~6% slower on the medium z-sweep),
    and a single job has no parallelism to exploit — both cases should
    run in-process and be reported as such, not as a "speedup" row.
    """
    return n_workers > 1 and n_jobs > 1 and (os.cpu_count() or 1) > 1
